// Package cluster assembles a complete DPFS deployment in one process:
// a metadata database served over TCP (the paper's POSTGRES at
// Northwestern), any number of DPFS I/O servers with optional
// heterogeneous performance models (the paper's three workstation
// classes), and client factories for compute-node goroutines (the
// paper's SP2 ranks). Tests, examples and every benchmark build their
// testbed through this package; the same building blocks run as
// separate processes through cmd/dpfs-meta and cmd/dpfs-server.
package cluster

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"dpfs/internal/core"
	"dpfs/internal/gossip"
	"dpfs/internal/meta"
	"dpfs/internal/metadb"
	"dpfs/internal/metadb/mdbnet"
	"dpfs/internal/metarepl"
	"dpfs/internal/netsim"
	"dpfs/internal/obs"
	"dpfs/internal/repair"
	"dpfs/internal/server"
)

// ServerSpec describes one I/O server to launch.
type ServerSpec struct {
	// Name registers the server in DPFS-SERVER; empty names are
	// generated ("io0", "io1", ...).
	Name string
	// Class, when non-zero, attaches a netsim performance model.
	Class netsim.Params
	// Capacity advertised in the catalog (bytes); defaults to 1 GiB.
	Capacity int64
}

// Config configures a cluster.
type Config struct {
	// Servers lists the I/O servers to start.
	Servers []ServerSpec
	// Dir is the working directory for server roots and the metadata
	// database; it must exist.
	Dir string
	// DurableMeta stores the metadata database on disk (Dir/meta)
	// instead of in memory.
	DurableMeta bool
	// RefBrickBytes calibrates the normalized performance numbers
	// (DPFS-SERVER.performance): the per-brick cost of each class is
	// normalized against the fastest. Defaults to 512 KiB, the
	// 256x256 float64 tile of Section 8.
	RefBrickBytes int64
	// WireV2 makes the servers' own outbound traffic (repair pulls)
	// speak the tagged-frame wire protocol. Inbound needs no switch:
	// every server auto-detects the protocol per connection.
	WireV2 bool
	// MetaShards is the number of catalog shards to run (each its own
	// metadata database behind its own TCP server, with paths hash-
	// routed across them by meta.ShardRouter). 0 or 1 runs the single
	// catalog exactly as before.
	MetaShards int
	// MetaSync fsyncs every shard's WAL on commit (needs DurableMeta).
	MetaSync bool
	// MetaGroupCommit batches those fsyncs across concurrent
	// committers (metadb.Options.GroupCommit).
	MetaGroupCommit bool
	// MetaSyncDelay models the metadata device's per-fsync cost
	// (metadb.Options.SyncDelay); benchmarks use it for a
	// deterministic disk model.
	MetaSyncDelay time.Duration
	// MetaReplicas runs every catalog shard as an R-way replica group
	// (internal/metarepl): replica 0 bootstraps as primary, the rest
	// follow as warm standbys, and clients fail over by redirect. 0 or
	// 1 runs unreplicated shards exactly as before.
	MetaReplicas int
	// MetaReplAck selects the replication acknowledgement quorum
	// (majority by default).
	MetaReplAck metarepl.Ack
	// MetaHeartbeat and MetaElectionTimeout tune replication failover
	// timing; zero uses the metarepl defaults.
	MetaHeartbeat       time.Duration
	MetaElectionTimeout time.Duration
	// MetaEvents receives the replica groups' promotion/step-down/
	// resync events (default: the process-wide obs.Events log).
	MetaEvents *obs.EventLog
	// Gossip starts a gossip node inside every I/O server (DESIGN.md
	// §14): membership and health spread peer-to-peer over the
	// servers' existing listeners, RPC responses piggyback
	// server-table deltas to clients, and repair runs gain the gossip
	// second witness automatically.
	Gossip bool
	// GossipInterval is the gossip round period (default 50ms — tuned
	// for in-process tests; production deployments use seconds).
	GossipInterval time.Duration
	// GossipSeed seeds each node's deterministic peer selection
	// (node i derives its own seed from it), so chaos sweeps replay.
	GossipSeed int64
	// GossipDial overrides how gossip exchanges dial peers (fault
	// injection). Nil uses plain TCP.
	GossipDial func(ctx context.Context, addr string) (net.Conn, error)
	// GossipEvents receives the nodes' membership events (default:
	// the process-wide obs.Events log).
	GossipEvents *obs.EventLog
}

// Cluster is a running DPFS deployment.
type Cluster struct {
	// DB and MetaSrv are shard 0 (replica 0 when replicated), which is
	// the whole catalog in the default single-shard configuration.
	DB        *metadb.DB
	MetaSrv   *mdbnet.Server
	DBs       []*metadb.DB
	MetaSrvs  []*mdbnet.Server
	IOServers []*server.Server
	Specs     []ServerSpec
	// GossipNodes holds each I/O server's gossip node, index-aligned
	// with IOServers (nil unless Config.Gossip).
	GossipNodes []*gossip.Node

	// Replica-group state, populated only with Config.MetaReplicas > 1:
	// index [shard][replica]. DBs[i] and MetaSrvs[i] alias replica 0.
	// Entries go nil while a replica is killed (KillMetaReplica).
	Replicas [][]*metarepl.Replica
	ReplDBs  [][]*metadb.DB
	ReplSrvs [][]*mdbnet.Server

	cfg       Config
	replPeers [][]string // replication-stream addresses per shard
	replSQL   [][]string // client SQL addresses per shard

	mu      sync.Mutex // guards clients and server/replica slice swaps
	clients []*mdbnet.Client
	groups  []*mdbnet.GroupClient

	gossipCancels []context.CancelFunc // per-node Run cancels
}

// Start launches the metadata server and all I/O servers, registers
// the servers in the catalog, and returns the running cluster.
func Start(cfg Config) (*Cluster, error) {
	if len(cfg.Servers) == 0 {
		return nil, fmt.Errorf("cluster: need at least one I/O server")
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("cluster: Config.Dir is required")
	}
	ref := cfg.RefBrickBytes
	if ref == 0 {
		ref = 512 << 10
	}

	shards := cfg.MetaShards
	if shards < 1 {
		shards = 1
	}
	replicas := cfg.MetaReplicas
	if replicas < 1 {
		replicas = 1
	}
	c := &Cluster{cfg: cfg}
	for i := 0; i < shards; i++ {
		if err := c.startMetaGroup(i, shards, replicas); err != nil {
			c.Close()
			return nil, err
		}
	}
	c.DB = c.DBs[0]
	c.MetaSrv = c.MetaSrvs[0]

	// Normalize performance numbers across the spec classes.
	classes := make([]netsim.Params, len(cfg.Servers))
	for i, s := range cfg.Servers {
		classes[i] = s.Class
	}
	perf := netsim.NormalizedPerf(classes, ref)

	cat, err := c.NewRouter()
	if err != nil {
		c.Close()
		return nil, err
	}
	if err := cat.Init(); err != nil {
		c.Close()
		return nil, err
	}

	for i, spec := range cfg.Servers {
		name := spec.Name
		if name == "" {
			name = fmt.Sprintf("io%d", i)
		}
		root := filepath.Join(cfg.Dir, "srv-"+name)
		if err := os.MkdirAll(root, 0o755); err != nil {
			c.Close()
			return nil, err
		}
		var model *netsim.Model
		if spec.Class != (netsim.Params{}) {
			model = netsim.New(spec.Class)
		}
		srv, err := server.Listen(server.Config{Root: root, Model: model, Name: name, WireV2: cfg.WireV2}, "")
		if err != nil {
			c.Close()
			return nil, err
		}
		c.IOServers = append(c.IOServers, srv)
		cap := spec.Capacity
		if cap == 0 {
			cap = 1 << 30
		}
		if err := cat.RegisterServer(meta.ServerInfo{
			Name: name, Capacity: cap, Performance: perf[i], Addr: srv.Addr(),
		}); err != nil {
			c.Close()
			return nil, err
		}
		spec.Name = name
		c.Specs = append(c.Specs, spec)
	}
	if cfg.Gossip {
		if err := c.startGossip(); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// startGossip builds and starts one gossip node per I/O server: every
// node seeds its view with every other server's address, attaches to
// its server (delta piggybacking, 0xDB connection serving) and runs
// jittered rounds until the cluster closes or the server is killed.
func (c *Cluster) startGossip() error {
	addrs := make([]string, len(c.IOServers))
	for i, srv := range c.IOServers {
		addrs[i] = srv.Addr()
	}
	interval := c.cfg.GossipInterval
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	events := c.cfg.GossipEvents
	c.gossipCancels = make([]context.CancelFunc, len(c.IOServers))
	for i, srv := range c.IOServers {
		srv := srv
		seeds := make([]string, 0, len(addrs)-1)
		for j, a := range addrs {
			if j != i {
				seeds = append(seeds, a)
			}
		}
		node, err := gossip.NewNode(gossip.Config{
			Self:      gossip.Record{Addr: addrs[i], Name: c.Specs[i].Name, State: gossip.StateAlive},
			Seeds:     seeds,
			Seed:      c.cfg.GossipSeed + int64(i)*7919,
			Params:    gossip.DefaultParams(len(addrs)),
			Transport: &gossip.NetTransport{Dial: c.cfg.GossipDial},
			Metrics:   srv.Metrics(),
			Events:    events,
			SelfUpdate: func(rec *gossip.Record) {
				rec.Gen = srv.GenHighWater()
			},
		})
		if err != nil {
			return err
		}
		srv.SetGossip(node)
		ctx, cancel := context.WithCancel(context.Background())
		c.gossipCancels[i] = cancel
		go node.Run(ctx, interval)
		c.GossipNodes = append(c.GossipNodes, node)
	}
	return nil
}

// KillServer stops I/O server i like a crash: its gossip node stops
// announcing (the rest of the mesh must detect the silence) and the
// listener closes. Tests that only close the listener keep the old
// c.IOServers[i].Close() path.
func (c *Cluster) KillServer(i int) error {
	c.mu.Lock()
	if c.gossipCancels != nil && c.gossipCancels[i] != nil {
		c.gossipCancels[i]()
		c.gossipCancels[i] = nil
	}
	c.mu.Unlock()
	return c.IOServers[i].Close()
}

// metaDBOptions builds shard i, replica j's database options. Durable
// layouts keep the historical paths (meta, meta<i>) for unreplicated
// clusters and use meta<i>r<j> per replica otherwise.
func (c *Cluster) metaDBOptions(i, j, shards, replicas int) metadb.Options {
	opts := metadb.Options{
		Sync:        c.cfg.MetaSync,
		GroupCommit: c.cfg.MetaGroupCommit,
		SyncDelay:   c.cfg.MetaSyncDelay,
	}
	if c.cfg.DurableMeta {
		switch {
		case shards == 1 && replicas == 1:
			opts.Dir = filepath.Join(c.cfg.Dir, "meta")
		case replicas == 1:
			opts.Dir = filepath.Join(c.cfg.Dir, fmt.Sprintf("meta%d", i))
		default:
			opts.Dir = filepath.Join(c.cfg.Dir, fmt.Sprintf("meta%dr%d", i, j))
		}
	}
	return opts
}

// startMetaGroup launches catalog shard i: one database and SQL server
// when unreplicated, a full metarepl replica group otherwise.
func (c *Cluster) startMetaGroup(i, shards, replicas int) error {
	var (
		dbs  []*metadb.DB
		srvs []*mdbnet.Server
		liss []*mdbnet.ReplListener
	)
	// fail releases everything this call created that the cluster does
	// not yet own.
	fail := func(err error) error {
		for _, l := range liss {
			l.Close()
		}
		for _, s := range srvs {
			s.Close()
		}
		for _, d := range dbs {
			d.Close()
		}
		return err
	}
	peers := make([]string, 0, replicas)
	if replicas > 1 {
		// Replication listeners are bound first so every replica knows
		// the full peer list before any of them starts.
		for j := 0; j < replicas; j++ {
			lis, err := mdbnet.ListenRepl("")
			if err != nil {
				return fail(err)
			}
			liss = append(liss, lis)
			peers = append(peers, lis.Addr())
		}
	}
	for j := 0; j < replicas; j++ {
		db, err := metadb.Open(c.metaDBOptions(i, j, shards, replicas))
		if err != nil {
			return fail(err)
		}
		dbs = append(dbs, db)
		srv, err := mdbnet.Listen(db, "")
		if err != nil {
			return fail(err)
		}
		srvs = append(srvs, srv)
	}
	c.DBs = append(c.DBs, dbs[0])
	c.MetaSrvs = append(c.MetaSrvs, srvs[0])
	c.ReplDBs = append(c.ReplDBs, dbs)
	c.ReplSrvs = append(c.ReplSrvs, srvs)
	if replicas == 1 {
		c.Replicas = append(c.Replicas, nil)
		c.replPeers = append(c.replPeers, nil)
		c.replSQL = append(c.replSQL, []string{srvs[0].Addr()})
		return nil
	}

	sqlAddrs := make([]string, replicas)
	for j, s := range srvs {
		sqlAddrs[j] = s.Addr()
	}
	reps := make([]*metarepl.Replica, replicas)
	for j := 0; j < replicas; j++ {
		rep, err := metarepl.New(metarepl.Config{
			Name:            fmt.Sprintf("meta%d", i),
			ID:              j,
			Peers:           peers,
			SQLAddrs:        sqlAddrs,
			DB:              dbs[j],
			Listener:        liss[j],
			Ack:             c.cfg.MetaReplAck,
			Heartbeat:       c.cfg.MetaHeartbeat,
			ElectionTimeout: c.cfg.MetaElectionTimeout,
			Events:          c.cfg.MetaEvents,
		})
		if err != nil {
			// Replicas 0..j-1 own their listeners and are closed by
			// Cluster.Close via the Replicas row below; the rest are
			// still this call's to release.
			for _, l := range liss[j:] {
				l.Close()
			}
			c.Replicas = append(c.Replicas, reps[:j])
			c.replPeers = append(c.replPeers, peers)
			c.replSQL = append(c.replSQL, sqlAddrs)
			return err
		}
		reps[j] = rep
		srvs[j].SetGate(rep.Gate())
	}
	c.Replicas = append(c.Replicas, reps)
	c.replPeers = append(c.replPeers, peers)
	c.replSQL = append(c.replSQL, sqlAddrs)
	// Fresh groups get replica 0 as the first primary; a group restarted
	// on durable state already has an epoch and lets an election decide.
	if epoch, _ := dbs[0].ReplEpoch(); epoch == 0 {
		if err := reps[0].Bootstrap(); err != nil {
			return err
		}
	}
	for _, rep := range reps {
		rep.Start()
	}
	return nil
}

// NewCatalog opens a fresh catalog connection to shard 0 through the
// network metadata server (one database session per connection, as the
// paper's clients each connect to POSTGRES). Single-shard clusters use
// it as the whole catalog; multi-shard tests use it for direct
// shard-0 inspection. On a replicated cluster the connection follows
// the shard's primary across failovers.
func (c *Cluster) NewCatalog() (*meta.Catalog, error) {
	x, err := c.dialShard(0, nil)
	if err != nil {
		return nil, err
	}
	return meta.NewCatalog(x), nil
}

// dialShard opens one catalog connection to shard i: a plain client
// for unreplicated shards, a replica-group client otherwise. The
// connection is tracked for Close.
func (c *Cluster) dialShard(i int, dial mdbnet.DialFunc) (meta.Execer, error) {
	c.mu.Lock()
	addrs := append([]string(nil), c.replSQL[i]...)
	c.mu.Unlock()
	if len(addrs) == 1 {
		var (
			cli *mdbnet.Client
			err error
		)
		if dial == nil {
			cli, err = mdbnet.Dial(addrs[0])
		} else {
			cli, err = mdbnet.DialWith(addrs[0], dial)
		}
		if err != nil {
			return nil, err
		}
		c.mu.Lock()
		c.clients = append(c.clients, cli)
		c.mu.Unlock()
		return cli, nil
	}
	g, err := mdbnet.DialGroup(addrs, dial)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.groups = append(c.groups, g)
	c.mu.Unlock()
	return g, nil
}

// MetaAddrs returns every catalog shard's listen address in shard
// order (replica 0's address on replicated clusters; see
// MetaGroupAddrs for the full replica lists).
func (c *Cluster) MetaAddrs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.MetaSrvs))
	for i, s := range c.MetaSrvs {
		out[i] = s.Addr()
	}
	return out
}

// MetaGroupAddrs returns every catalog shard's full replica address
// list (client SQL addresses), in shard then replica order — the
// [][]string shape dpfs.ConnectGroups takes.
func (c *Cluster) MetaGroupAddrs() [][]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([][]string, len(c.replSQL))
	for i, g := range c.replSQL {
		out[i] = append([]string(nil), g...)
	}
	return out
}

// NewRouter opens one catalog connection per shard and returns the
// routed catalog surface: the plain catalog itself for one shard
// (byte-for-byte the pre-sharding path), a meta.ShardRouter otherwise.
func (c *Cluster) NewRouter() (meta.Router, error) {
	return c.NewRouterDial(nil)
}

// NewRouterDial is NewRouter with a custom transport dialer for the
// catalog connections (fault injectors wrap it in chaos tests); nil
// uses the default TCP dialer.
func (c *Cluster) NewRouterDial(dial mdbnet.DialFunc) (meta.Router, error) {
	c.mu.Lock()
	n := len(c.replSQL)
	c.mu.Unlock()
	shards := make([]meta.Router, n)
	for i := range shards {
		x, err := c.dialShard(i, dial)
		if err != nil {
			return nil, err
		}
		shards[i] = meta.NewCatalog(x)
	}
	if len(shards) == 1 {
		return shards[0], nil
	}
	return meta.NewShardRouter(shards...), nil
}

// NewFS builds a compute-node client with its own catalog
// connection(s).
func (c *Cluster) NewFS(rank int, opts core.Options) (*core.FS, error) {
	cat, err := c.NewRouter()
	if err != nil {
		return nil, err
	}
	return core.NewFS(cat, rank, opts), nil
}

// NewFSMetaDial is NewFS with a custom transport dialer for the
// catalog connections (chaos tests inject faults through it).
func (c *Cluster) NewFSMetaDial(rank int, opts core.Options, dial mdbnet.DialFunc) (*core.FS, error) {
	cat, err := c.NewRouterDial(dial)
	if err != nil {
		return nil, err
	}
	return core.NewFS(cat, rank, opts), nil
}

// Repair runs one online-repair pass over the cluster's catalog:
// servers are probed, their health recorded, and under-replicated
// bricks re-replicated onto healthy servers (see internal/repair).
// With gossip enabled, the run automatically consults the mesh (via
// the first still-running node) as the second witness for dead
// escalation, unless the caller supplied its own gossip view.
func (c *Cluster) Repair(ctx context.Context, opts repair.Options) (*repair.Report, error) {
	cat, err := c.NewRouter()
	if err != nil {
		return nil, err
	}
	if opts.Gossip == nil {
		if n := c.liveGossipNode(); n != nil {
			opts.Gossip = n
		}
	}
	r := repair.New(cat, opts)
	defer r.Close()
	return r.Run(ctx)
}

// liveGossipNode returns a gossip node whose server has not been
// killed (nil when gossip is off or every node is stopped).
func (c *Cluster) liveGossipNode() *gossip.Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gossipCancels == nil {
		return nil
	}
	for i, n := range c.GossipNodes {
		if c.gossipCancels[i] != nil {
			return n
		}
	}
	return nil
}

// StopMetaShard closes shard i's network server, severing every
// client connection to it. The shard's database (and its WAL) stays
// intact — this models a metadata server crash that RestartMetaShard
// recovers from.
func (c *Cluster) StopMetaShard(i int) error {
	c.mu.Lock()
	srv := c.MetaSrvs[i]
	c.mu.Unlock()
	return srv.Close()
}

// RestartMetaShard brings shard i back on its previous address so
// surviving clients (which redial broken connections lazily)
// reconnect to the same endpoint.
func (c *Cluster) RestartMetaShard(i int) error {
	c.mu.Lock()
	old := c.MetaSrvs[i]
	db := c.DBs[i]
	c.mu.Unlock()
	srv, err := mdbnet.Listen(db, old.Addr())
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.MetaSrvs[i] = srv
	if i == 0 {
		c.MetaSrv = srv
	}
	c.mu.Unlock()
	return nil
}

// KillMetaReplica kills shard i's replica j entirely: replication
// core, SQL server and database all go down, modeling a metadata
// server machine crash. With in-memory databases the replica's state
// dies with it (a restart resyncs by snapshot); durable replicas
// recover their own WAL. The cluster slot goes nil until
// RestartMetaReplica.
func (c *Cluster) KillMetaReplica(i, j int) error {
	c.mu.Lock()
	rep := c.Replicas[i][j]
	srv := c.ReplSrvs[i][j]
	db := c.ReplDBs[i][j]
	c.Replicas[i][j] = nil
	c.ReplSrvs[i][j] = nil
	c.ReplDBs[i][j] = nil
	c.mu.Unlock()
	var firstErr error
	if rep != nil {
		firstErr = rep.Close()
	}
	if srv != nil {
		if err := srv.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if db != nil {
		if err := db.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// RestartMetaReplica brings a killed replica back on its previous
// replication and SQL addresses. It rejoins as a follower (the durable
// epoch, or a snapshot resync for in-memory state, catches it up);
// elections decide whether it ever leads again.
func (c *Cluster) RestartMetaReplica(i, j int) error {
	c.mu.Lock()
	shards := len(c.replSQL)
	peers := c.replPeers[i]
	sqlAddrs := c.replSQL[i]
	replicas := len(peers)
	c.mu.Unlock()
	if replicas < 2 {
		return fmt.Errorf("cluster: shard %d is not replicated", i)
	}
	db, err := metadb.Open(c.metaDBOptions(i, j, shards, replicas))
	if err != nil {
		return err
	}
	lis, err := mdbnet.ListenRepl(peers[j])
	if err != nil {
		db.Close()
		return err
	}
	srv, err := mdbnet.Listen(db, sqlAddrs[j])
	if err != nil {
		lis.Close()
		db.Close()
		return err
	}
	rep, err := metarepl.New(metarepl.Config{
		Name:            fmt.Sprintf("meta%d", i),
		ID:              j,
		Peers:           peers,
		SQLAddrs:        sqlAddrs,
		DB:              db,
		Listener:        lis,
		Ack:             c.cfg.MetaReplAck,
		Heartbeat:       c.cfg.MetaHeartbeat,
		ElectionTimeout: c.cfg.MetaElectionTimeout,
		Events:          c.cfg.MetaEvents,
	})
	if err != nil {
		srv.Close()
		lis.Close()
		db.Close()
		return err
	}
	srv.SetGate(rep.Gate())
	rep.Start()
	c.mu.Lock()
	c.Replicas[i][j] = rep
	c.ReplSrvs[i][j] = srv
	c.ReplDBs[i][j] = db
	if j == 0 {
		c.DBs[i] = db
		c.MetaSrvs[i] = srv
		if i == 0 {
			c.DB = db
			c.MetaSrv = srv
		}
	}
	c.mu.Unlock()
	return nil
}

// MetaPrimary returns shard i's current primary replica ID, or -1
// while the group has none (mid-election, or unreplicated).
func (c *Cluster) MetaPrimary(i int) int {
	c.mu.Lock()
	reps := c.Replicas[i]
	c.mu.Unlock()
	for j, rep := range reps {
		if rep != nil && rep.Role() == metarepl.Primary {
			return j
		}
	}
	return -1
}

// ServerNames returns the registered I/O server names in launch
// order.
func (c *Cluster) ServerNames() []string {
	out := make([]string, len(c.Specs))
	for i, s := range c.Specs {
		out[i] = s.Name
	}
	return out
}

// Close shuts everything down: catalog connections, I/O servers,
// replica groups, the metadata servers and the databases.
func (c *Cluster) Close() error {
	var firstErr error
	c.mu.Lock()
	clients := c.clients
	c.clients = nil
	groups := c.groups
	c.groups = nil
	c.mu.Unlock()
	for _, cli := range clients {
		if err := cli.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, g := range groups {
		if err := g.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	c.mu.Lock()
	cancels := c.gossipCancels
	c.gossipCancels = nil
	c.mu.Unlock()
	for _, cancel := range cancels {
		if cancel != nil {
			cancel()
		}
	}
	for _, srv := range c.IOServers {
		if err := srv.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, reps := range c.Replicas {
		for _, rep := range reps {
			if rep == nil {
				continue
			}
			if err := rep.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	for _, srvs := range c.ReplSrvs {
		for _, srv := range srvs {
			if srv == nil {
				continue
			}
			if err := srv.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	for _, dbs := range c.ReplDBs {
		for _, db := range dbs {
			if db == nil {
				continue
			}
			if err := db.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// Uniform returns n identical unshaped server specs (full native
// speed), for correctness tests.
func Uniform(n int) []ServerSpec {
	out := make([]ServerSpec, n)
	return out
}

// UniformClass returns n servers of one storage class.
func UniformClass(n int, class netsim.Params) []ServerSpec {
	out := make([]ServerSpec, n)
	for i := range out {
		out[i].Class = class
	}
	return out
}

// Mixed returns the Fig. 13/14 testbed: half the servers class 1, half
// class 3.
func Mixed(n int) []ServerSpec {
	out := make([]ServerSpec, n)
	for i := range out {
		if i < n/2 {
			out[i].Class = netsim.Class1()
		} else {
			out[i].Class = netsim.Class3()
		}
	}
	return out
}
