// Package cluster assembles a complete DPFS deployment in one process:
// a metadata database served over TCP (the paper's POSTGRES at
// Northwestern), any number of DPFS I/O servers with optional
// heterogeneous performance models (the paper's three workstation
// classes), and client factories for compute-node goroutines (the
// paper's SP2 ranks). Tests, examples and every benchmark build their
// testbed through this package; the same building blocks run as
// separate processes through cmd/dpfs-meta and cmd/dpfs-server.
package cluster

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"dpfs/internal/core"
	"dpfs/internal/meta"
	"dpfs/internal/metadb"
	"dpfs/internal/metadb/mdbnet"
	"dpfs/internal/netsim"
	"dpfs/internal/repair"
	"dpfs/internal/server"
)

// ServerSpec describes one I/O server to launch.
type ServerSpec struct {
	// Name registers the server in DPFS-SERVER; empty names are
	// generated ("io0", "io1", ...).
	Name string
	// Class, when non-zero, attaches a netsim performance model.
	Class netsim.Params
	// Capacity advertised in the catalog (bytes); defaults to 1 GiB.
	Capacity int64
}

// Config configures a cluster.
type Config struct {
	// Servers lists the I/O servers to start.
	Servers []ServerSpec
	// Dir is the working directory for server roots and the metadata
	// database; it must exist.
	Dir string
	// DurableMeta stores the metadata database on disk (Dir/meta)
	// instead of in memory.
	DurableMeta bool
	// RefBrickBytes calibrates the normalized performance numbers
	// (DPFS-SERVER.performance): the per-brick cost of each class is
	// normalized against the fastest. Defaults to 512 KiB, the
	// 256x256 float64 tile of Section 8.
	RefBrickBytes int64
	// WireV2 makes the servers' own outbound traffic (repair pulls)
	// speak the tagged-frame wire protocol. Inbound needs no switch:
	// every server auto-detects the protocol per connection.
	WireV2 bool
	// MetaShards is the number of catalog shards to run (each its own
	// metadata database behind its own TCP server, with paths hash-
	// routed across them by meta.ShardRouter). 0 or 1 runs the single
	// catalog exactly as before.
	MetaShards int
	// MetaSync fsyncs every shard's WAL on commit (needs DurableMeta).
	MetaSync bool
	// MetaGroupCommit batches those fsyncs across concurrent
	// committers (metadb.Options.GroupCommit).
	MetaGroupCommit bool
	// MetaSyncDelay models the metadata device's per-fsync cost
	// (metadb.Options.SyncDelay); benchmarks use it for a
	// deterministic disk model.
	MetaSyncDelay time.Duration
}

// Cluster is a running DPFS deployment.
type Cluster struct {
	// DB and MetaSrv are shard 0, which is the whole catalog in the
	// default single-shard configuration.
	DB        *metadb.DB
	MetaSrv   *mdbnet.Server
	DBs       []*metadb.DB
	MetaSrvs  []*mdbnet.Server
	IOServers []*server.Server
	Specs     []ServerSpec

	mu      sync.Mutex // guards clients and MetaSrvs swaps
	clients []*mdbnet.Client
}

// Start launches the metadata server and all I/O servers, registers
// the servers in the catalog, and returns the running cluster.
func Start(cfg Config) (*Cluster, error) {
	if len(cfg.Servers) == 0 {
		return nil, fmt.Errorf("cluster: need at least one I/O server")
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("cluster: Config.Dir is required")
	}
	ref := cfg.RefBrickBytes
	if ref == 0 {
		ref = 512 << 10
	}

	shards := cfg.MetaShards
	if shards < 1 {
		shards = 1
	}
	c := &Cluster{}
	for i := 0; i < shards; i++ {
		opts := metadb.Options{
			Sync:        cfg.MetaSync,
			GroupCommit: cfg.MetaGroupCommit,
			SyncDelay:   cfg.MetaSyncDelay,
		}
		if cfg.DurableMeta {
			if shards == 1 {
				opts.Dir = filepath.Join(cfg.Dir, "meta")
			} else {
				opts.Dir = filepath.Join(cfg.Dir, fmt.Sprintf("meta%d", i))
			}
		}
		db, err := metadb.Open(opts)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.DBs = append(c.DBs, db)
		srv, err := mdbnet.Listen(db, "")
		if err != nil {
			c.Close()
			return nil, err
		}
		c.MetaSrvs = append(c.MetaSrvs, srv)
	}
	c.DB = c.DBs[0]
	c.MetaSrv = c.MetaSrvs[0]

	// Normalize performance numbers across the spec classes.
	classes := make([]netsim.Params, len(cfg.Servers))
	for i, s := range cfg.Servers {
		classes[i] = s.Class
	}
	perf := netsim.NormalizedPerf(classes, ref)

	cat, err := c.NewRouter()
	if err != nil {
		c.Close()
		return nil, err
	}
	if err := cat.Init(); err != nil {
		c.Close()
		return nil, err
	}

	for i, spec := range cfg.Servers {
		name := spec.Name
		if name == "" {
			name = fmt.Sprintf("io%d", i)
		}
		root := filepath.Join(cfg.Dir, "srv-"+name)
		if err := os.MkdirAll(root, 0o755); err != nil {
			c.Close()
			return nil, err
		}
		var model *netsim.Model
		if spec.Class != (netsim.Params{}) {
			model = netsim.New(spec.Class)
		}
		srv, err := server.Listen(server.Config{Root: root, Model: model, Name: name, WireV2: cfg.WireV2}, "")
		if err != nil {
			c.Close()
			return nil, err
		}
		c.IOServers = append(c.IOServers, srv)
		cap := spec.Capacity
		if cap == 0 {
			cap = 1 << 30
		}
		if err := cat.RegisterServer(meta.ServerInfo{
			Name: name, Capacity: cap, Performance: perf[i], Addr: srv.Addr(),
		}); err != nil {
			c.Close()
			return nil, err
		}
		spec.Name = name
		c.Specs = append(c.Specs, spec)
	}
	return c, nil
}

// NewCatalog opens a fresh catalog connection to shard 0 through the
// network metadata server (one database session per connection, as the
// paper's clients each connect to POSTGRES). Single-shard clusters use
// it as the whole catalog; multi-shard tests use it for direct
// shard-0 inspection.
func (c *Cluster) NewCatalog() (*meta.Catalog, error) {
	cli, err := mdbnet.Dial(c.MetaAddrs()[0])
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.clients = append(c.clients, cli)
	c.mu.Unlock()
	return meta.NewCatalog(cli), nil
}

// MetaAddrs returns every catalog shard's listen address in shard
// order.
func (c *Cluster) MetaAddrs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.MetaSrvs))
	for i, s := range c.MetaSrvs {
		out[i] = s.Addr()
	}
	return out
}

// NewRouter opens one catalog connection per shard and returns the
// routed catalog surface: the plain catalog itself for one shard
// (byte-for-byte the pre-sharding path), a meta.ShardRouter otherwise.
func (c *Cluster) NewRouter() (meta.Router, error) {
	return c.NewRouterDial(nil)
}

// NewRouterDial is NewRouter with a custom transport dialer for the
// catalog connections (fault injectors wrap it in chaos tests); nil
// uses the default TCP dialer.
func (c *Cluster) NewRouterDial(dial mdbnet.DialFunc) (meta.Router, error) {
	addrs := c.MetaAddrs()
	shards := make([]meta.Router, len(addrs))
	for i, addr := range addrs {
		var cli *mdbnet.Client
		var err error
		if dial == nil {
			cli, err = mdbnet.Dial(addr)
		} else {
			cli, err = mdbnet.DialWith(addr, dial)
		}
		if err != nil {
			return nil, err
		}
		c.mu.Lock()
		c.clients = append(c.clients, cli)
		c.mu.Unlock()
		shards[i] = meta.NewCatalog(cli)
	}
	if len(shards) == 1 {
		return shards[0], nil
	}
	return meta.NewShardRouter(shards...), nil
}

// NewFS builds a compute-node client with its own catalog
// connection(s).
func (c *Cluster) NewFS(rank int, opts core.Options) (*core.FS, error) {
	cat, err := c.NewRouter()
	if err != nil {
		return nil, err
	}
	return core.NewFS(cat, rank, opts), nil
}

// NewFSMetaDial is NewFS with a custom transport dialer for the
// catalog connections (chaos tests inject faults through it).
func (c *Cluster) NewFSMetaDial(rank int, opts core.Options, dial mdbnet.DialFunc) (*core.FS, error) {
	cat, err := c.NewRouterDial(dial)
	if err != nil {
		return nil, err
	}
	return core.NewFS(cat, rank, opts), nil
}

// Repair runs one online-repair pass over the cluster's catalog:
// servers are probed, their health recorded, and under-replicated
// bricks re-replicated onto healthy servers (see internal/repair).
func (c *Cluster) Repair(ctx context.Context, opts repair.Options) (*repair.Report, error) {
	cat, err := c.NewRouter()
	if err != nil {
		return nil, err
	}
	r := repair.New(cat, opts)
	defer r.Close()
	return r.Run(ctx)
}

// StopMetaShard closes shard i's network server, severing every
// client connection to it. The shard's database (and its WAL) stays
// intact — this models a metadata server crash that RestartMetaShard
// recovers from.
func (c *Cluster) StopMetaShard(i int) error {
	c.mu.Lock()
	srv := c.MetaSrvs[i]
	c.mu.Unlock()
	return srv.Close()
}

// RestartMetaShard brings shard i back on its previous address so
// surviving clients (which redial broken connections lazily)
// reconnect to the same endpoint.
func (c *Cluster) RestartMetaShard(i int) error {
	c.mu.Lock()
	old := c.MetaSrvs[i]
	db := c.DBs[i]
	c.mu.Unlock()
	srv, err := mdbnet.Listen(db, old.Addr())
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.MetaSrvs[i] = srv
	if i == 0 {
		c.MetaSrv = srv
	}
	c.mu.Unlock()
	return nil
}

// ServerNames returns the registered I/O server names in launch
// order.
func (c *Cluster) ServerNames() []string {
	out := make([]string, len(c.Specs))
	for i, s := range c.Specs {
		out[i] = s.Name
	}
	return out
}

// Close shuts everything down: catalog connections, I/O servers, the
// metadata server and the database.
func (c *Cluster) Close() error {
	var firstErr error
	c.mu.Lock()
	clients := c.clients
	c.clients = nil
	c.mu.Unlock()
	for _, cli := range clients {
		if err := cli.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, srv := range c.IOServers {
		if err := srv.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, srv := range c.MetaSrvs {
		if err := srv.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, db := range c.DBs {
		if err := db.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Uniform returns n identical unshaped server specs (full native
// speed), for correctness tests.
func Uniform(n int) []ServerSpec {
	out := make([]ServerSpec, n)
	return out
}

// UniformClass returns n servers of one storage class.
func UniformClass(n int, class netsim.Params) []ServerSpec {
	out := make([]ServerSpec, n)
	for i := range out {
		out[i].Class = class
	}
	return out
}

// Mixed returns the Fig. 13/14 testbed: half the servers class 1, half
// class 3.
func Mixed(n int) []ServerSpec {
	out := make([]ServerSpec, n)
	for i := range out {
		if i < n/2 {
			out[i].Class = netsim.Class1()
		} else {
			out[i].Class = netsim.Class3()
		}
	}
	return out
}
