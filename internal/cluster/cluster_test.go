package cluster

import (
	"context"
	"testing"
	"time"

	"dpfs/internal/core"
	"dpfs/internal/netsim"
	"dpfs/internal/stripe"
)

func TestStartAndUse(t *testing.T) {
	c, err := Start(Config{Servers: Uniform(3), Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if len(c.IOServers) != 3 || len(c.ServerNames()) != 3 {
		t.Fatalf("servers = %v", c.ServerNames())
	}
	if c.ServerNames()[0] != "io0" {
		t.Fatalf("names = %v", c.ServerNames())
	}

	fs, err := c.NewFS(0, core.Options{Combine: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	f, err := fs.Create("/x", 1, []int64{4096}, core.Hint{BrickBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteAt(ctx, make([]byte, 4096), 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

func TestConfigValidation(t *testing.T) {
	if _, err := Start(Config{Dir: t.TempDir()}); err == nil {
		t.Fatal("no servers accepted")
	}
	if _, err := Start(Config{Servers: Uniform(1)}); err == nil {
		t.Fatal("empty dir accepted")
	}
}

func TestMixedPerfNormalization(t *testing.T) {
	c, err := Start(Config{Servers: Mixed(4), Dir: t.TempDir(), RefBrickBytes: 512 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cat, err := c.NewCatalog()
	if err != nil {
		t.Fatal(err)
	}
	servers, err := cat.Servers()
	if err != nil {
		t.Fatal(err)
	}
	perfs := map[string]int{}
	for _, s := range servers {
		perfs[s.Name] = s.Performance
	}
	// Mixed(4): io0, io1 class1 (perf 1); io2, io3 class3 (perf 3).
	if perfs["io0"] != 1 || perfs["io1"] != 1 || perfs["io2"] != 3 || perfs["io3"] != 3 {
		t.Fatalf("normalized perfs = %v", perfs)
	}
}

func TestSpecHelpers(t *testing.T) {
	if n := len(Uniform(5)); n != 5 {
		t.Fatalf("Uniform = %d", n)
	}
	uc := UniformClass(3, netsim.Class2())
	for _, s := range uc {
		if s.Class.Name != "class2" {
			t.Fatalf("UniformClass = %+v", s)
		}
	}
	m := Mixed(6)
	if m[0].Class.Name != "class1" || m[5].Class.Name != "class3" {
		t.Fatalf("Mixed = %+v", m)
	}
}

func TestDurableMeta(t *testing.T) {
	dir := t.TempDir()
	c, err := Start(Config{Servers: Uniform(1), Dir: dir, DurableMeta: true})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := c.NewFS(0, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("/persisted", 1, []int64{64}, core.Hint{BrickBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	fs.Close()
	c.Close()

	// A fresh cluster over the same directory recovers the catalog;
	// the I/O server re-registers under the same name and root, so the
	// file opens and its geometry survives.
	c2, err := Start(Config{Servers: Uniform(1), Dir: dir, DurableMeta: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	fs2, err := c2.NewFS(0, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	f2, err := fs2.Open("/persisted")
	if err != nil {
		t.Fatal(err)
	}
	if f2.Geometry().Level != stripe.LevelLinear || f2.Geometry().BrickBytes != 16 {
		t.Fatalf("recovered geometry = %+v", f2.Geometry())
	}
	f2.Close()
}

func TestCloseIdempotent(t *testing.T) {
	c, err := Start(Config{Servers: Uniform(1), Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}
