package core_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dpfs/internal/cluster"
	"dpfs/internal/core"
	"dpfs/internal/datatype"
	"dpfs/internal/netsim"
	"dpfs/internal/stripe"
)

func startCluster(t *testing.T, n int) *cluster.Cluster {
	t.Helper()
	c, err := cluster.Start(cluster.Config{Servers: cluster.Uniform(n), Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func newFS(t *testing.T, c *cluster.Cluster, rank int, opts core.Options) *core.FS {
	t.Helper()
	fs, err := c.NewFS(rank, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	return fs
}

func ctxT(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func pattern(n int64) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i*31 + 7)
	}
	return out
}

func TestLinearWriteReadAt(t *testing.T) {
	c := startCluster(t, 4)
	fs := newFS(t, c, 0, core.Options{})
	ctx := ctxT(t)

	f, err := fs.Create("/data.bin", 1, []int64{1 << 16}, core.Hint{Level: stripe.LevelLinear, BrickBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	data := pattern(1 << 16)
	if err := f.WriteAt(ctx, data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 1<<16)
	if err := f.ReadAt(ctx, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("full roundtrip mismatch")
	}
	// Unaligned partial read spanning bricks.
	sub := make([]byte, 5000)
	if err := f.ReadAt(ctx, sub, 3000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sub, data[3000:8000]) {
		t.Fatal("partial read mismatch")
	}
	// Partial overwrite.
	over := bytes.Repeat([]byte{0xEE}, 100)
	if err := f.WriteAt(ctx, over, 4090); err != nil {
		t.Fatal(err)
	}
	if err := f.ReadAt(ctx, sub[:120], 4080); err != nil {
		t.Fatal(err)
	}
	want := append(append([]byte{}, data[4080:4090]...), over...)
	want = append(want, data[4190:4200]...)
	if !bytes.Equal(sub[:120], want) {
		t.Fatal("overwrite mismatch")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err == nil {
		t.Fatal("double close should fail")
	}
	if err := f.WriteAt(ctx, data[:1], 0); err == nil {
		t.Fatal("write after close should fail")
	}
}

func TestAllLevelsSectionRoundtrip(t *testing.T) {
	c := startCluster(t, 4)
	ctx := ctxT(t)
	for _, combine := range []bool{false, true} {
		fs := newFS(t, c, 0, core.Options{Combine: combine, Stagger: combine})
		hints := map[string]core.Hint{
			"linear":   {Level: stripe.LevelLinear, BrickBytes: 1 << 10},
			"multidim": {Level: stripe.LevelMultidim, Tile: []int64{16, 16}},
			"array": {Level: stripe.LevelArray,
				Pattern: []stripe.Dist{stripe.DistBlock, stripe.DistStar}, Grid: []int64{4, 1}},
		}
		for name, hint := range hints {
			path := fmt.Sprintf("/%s-combine-%v", name, combine)
			f, err := fs.Create(path, 8, []int64{64, 64}, hint)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			full := stripe.FullSection([]int64{64, 64})
			data := pattern(full.Bytes(8))
			if err := f.WriteSection(ctx, full, data); err != nil {
				t.Fatalf("%s write: %v", name, err)
			}
			// Column access (the paper's (*, BLOCK) shape).
			col := stripe.NewSection([]int64{0, 8}, []int64{64, 8})
			buf := make([]byte, col.Bytes(8))
			if err := f.ReadSection(ctx, col, buf); err != nil {
				t.Fatalf("%s read: %v", name, err)
			}
			// Reference: extract from data.
			want := make([]byte, 0, len(buf))
			for r := int64(0); r < 64; r++ {
				off := (r*64 + 8) * 8
				want = append(want, data[off:off+8*8]...)
			}
			if !bytes.Equal(buf, want) {
				t.Fatalf("%s combine=%v column read mismatch", name, combine)
			}
			f.Close()
		}
	}
}

// TestParallelCompute runs 8 compute-node goroutines each writing its
// own (BLOCK, *) slice, then reading back a different node's slice.
func TestParallelCompute(t *testing.T) {
	c := startCluster(t, 4)
	ctx := ctxT(t)
	const np = 8
	const rows, cols = 64, 64

	fs0 := newFS(t, c, 0, core.Options{Combine: true, Stagger: true})
	f, err := fs0.Create("/shared", 8, []int64{rows, cols}, core.Hint{Level: stripe.LevelMultidim, Tile: []int64{8, 8}})
	if err != nil {
		t.Fatal(err)
	}
	f.Close()

	var wg sync.WaitGroup
	errs := make(chan error, np)
	for p := 0; p < np; p++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			fs, err := c.NewFS(rank, core.Options{Combine: true, Stagger: true})
			if err != nil {
				errs <- err
				return
			}
			defer fs.Close()
			f, err := fs.Open("/shared")
			if err != nil {
				errs <- err
				return
			}
			defer f.Close()
			sec := stripe.NewSection([]int64{int64(rank) * rows / np, 0}, []int64{rows / np, cols})
			data := make([]byte, sec.Bytes(8))
			for i := range data {
				data[i] = byte(rank)
			}
			if err := f.WriteSection(ctx, sec, data); err != nil {
				errs <- err
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every node's slice contains its rank byte.
	f2, err := fs0.Open("/shared")
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	for p := 0; p < np; p++ {
		sec := stripe.NewSection([]int64{int64(p) * rows / np, 0}, []int64{rows / np, cols})
		buf := make([]byte, sec.Bytes(8))
		if err := f2.ReadSection(ctx, sec, buf); err != nil {
			t.Fatal(err)
		}
		for i, b := range buf {
			if b != byte(p) {
				t.Fatalf("rank %d slice byte %d = %d", p, i, b)
			}
		}
	}
}

// TestCombinationReducesRequests verifies the quantitative claim of
// Sec. 4.2: accessing 8 bricks striped over 4 servers takes 8 requests
// in the general approach but 4 with combination.
func TestCombinationReducesRequests(t *testing.T) {
	c := startCluster(t, 4)
	ctx := ctxT(t)

	build := func(combine bool, path string) *core.File {
		fs := newFS(t, c, 0, core.Options{Combine: combine})
		f, err := fs.Create(path, 1, []int64{32 << 10}, core.Hint{Level: stripe.LevelLinear, BrickBytes: 4 << 10})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}

	f := build(false, "/general")
	core.ResetStats()
	if err := f.WriteAt(ctx, make([]byte, 32<<10), 0); err != nil {
		t.Fatal(err)
	}
	if got := core.ReadStats().Requests; got != 8 {
		t.Errorf("general approach issued %d requests, want 8", got)
	}

	f = build(true, "/combined")
	core.ResetStats()
	if err := f.WriteAt(ctx, make([]byte, 32<<10), 0); err != nil {
		t.Fatal(err)
	}
	if got := core.ReadStats().Requests; got != 4 {
		t.Errorf("combined approach issued %d requests, want 4", got)
	}
}

// TestWholeBrickReads verifies the paper's brick-as-access-unit model:
// a column read of a linear file transfers whole bricks (8x the useful
// bytes in this layout) unless ExactReads is set.
func TestWholeBrickReads(t *testing.T) {
	c := startCluster(t, 4)
	ctx := ctxT(t)

	prep := func(opts core.Options, path string) *core.File {
		fs := newFS(t, c, 0, opts)
		f, err := fs.Create(path, 1, []int64{64, 64}, core.Hint{Level: stripe.LevelLinear, BrickBytes: 64})
		if err != nil {
			t.Fatal(err)
		}
		full := stripe.FullSection([]int64{64, 64})
		if err := f.WriteSection(ctx, full, pattern(64*64)); err != nil {
			t.Fatal(err)
		}
		return f
	}

	col := stripe.NewSection([]int64{0, 0}, []int64{64, 8})
	buf := make([]byte, col.Bytes(1))

	f := prep(core.Options{}, "/whole")
	core.ResetStats()
	if err := f.ReadSection(ctx, col, buf); err != nil {
		t.Fatal(err)
	}
	st := core.ReadStats()
	if st.BytesUseful != 512 {
		t.Fatalf("useful bytes = %d", st.BytesUseful)
	}
	if st.BytesTransferred != 64*64 {
		t.Errorf("whole-brick read moved %d bytes, want %d (all bricks)", st.BytesTransferred, 64*64)
	}

	f = prep(core.Options{ExactReads: true}, "/exact")
	core.ResetStats()
	if err := f.ReadSection(ctx, col, buf); err != nil {
		t.Fatal(err)
	}
	st = core.ReadStats()
	if st.BytesTransferred != 512 {
		t.Errorf("exact read moved %d bytes, want 512", st.BytesTransferred)
	}
}

func TestTypedIO(t *testing.T) {
	c := startCluster(t, 2)
	fs := newFS(t, c, 0, core.Options{Combine: true})
	ctx := ctxT(t)

	// An 8x8 byte matrix in client memory; write its 4x4 center block
	// into a 4x4 DPFS file using a subarray datatype.
	f, err := fs.Create("/typed", 1, []int64{4, 4}, core.Hint{Level: stripe.LevelMultidim, Tile: []int64{2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	mem := pattern(64)
	sub := datatype.Subarray{ElemSize: 1, Dims: []int64{8, 8}, Start: []int64{2, 2}, Count: []int64{4, 4}}
	full := stripe.FullSection([]int64{4, 4})
	if err := f.WriteTyped(ctx, full, sub, mem); err != nil {
		t.Fatal(err)
	}

	// Read back into a different memory layout (vector with stride).
	out := make([]byte, 64)
	if err := f.ReadTyped(ctx, full, sub, out); err != nil {
		t.Fatal(err)
	}
	for r := 2; r < 6; r++ {
		for col := 2; col < 6; col++ {
			if out[r*8+col] != mem[r*8+col] {
				t.Fatalf("typed roundtrip mismatch at (%d,%d)", r, col)
			}
		}
	}
	// Size mismatch errors.
	bad := datatype.Bytes(3)
	if err := f.WriteTyped(ctx, full, bad, mem); err == nil {
		t.Fatal("datatype size mismatch accepted")
	}
	if err := f.ReadTyped(ctx, full, bad, out); err == nil {
		t.Fatal("datatype size mismatch accepted")
	}
}

func TestRemove(t *testing.T) {
	c := startCluster(t, 3)
	fs := newFS(t, c, 0, core.Options{})
	ctx := ctxT(t)

	f, err := fs.Create("/gone", 1, []int64{4096}, core.Hint{BrickBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteAt(ctx, pattern(4096), 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(ctx, "/gone"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("/gone"); err == nil {
		t.Fatal("removed file still opens")
	}
	if err := fs.Remove(ctx, "/gone"); err == nil {
		t.Fatal("double remove should fail")
	}
	// The name is reusable and reads back fresh zeros are not leaked
	// from the old subfiles.
	f2, err := fs.Create("/gone", 1, []int64{4096}, core.Hint{BrickBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	if err := f2.ReadAt(ctx, buf, 0); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("stale byte %d = %d after recreate", i, b)
		}
	}
}

func TestImportExport(t *testing.T) {
	c := startCluster(t, 3)
	fs := newFS(t, c, 0, core.Options{Combine: true})
	ctx := ctxT(t)

	data := pattern(3<<20 + 12345) // deliberately unaligned
	if err := fs.Import(ctx, bytes.NewReader(data), "/imported", int64(len(data)), core.Hint{}); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := fs.Export(ctx, &out, "/imported"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("import/export roundtrip mismatch")
	}

	// Export of a multidim file linearizes row-major.
	f, err := fs.Create("/md", 8, []int64{32, 32}, core.Hint{Level: stripe.LevelMultidim, Tile: []int64{8, 8}})
	if err != nil {
		t.Fatal(err)
	}
	md := pattern(32 * 32 * 8)
	if err := f.WriteSection(ctx, stripe.FullSection([]int64{32, 32}), md); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := fs.Export(ctx, &out, "/md"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), md) {
		t.Fatal("multidim export mismatch")
	}

	// A failed import leaves nothing behind.
	short := bytes.NewReader(data[:100])
	if err := fs.Import(ctx, short, "/truncated", 1000, core.Hint{}); err == nil {
		t.Fatal("short import should fail")
	}
	if _, err := fs.Open("/truncated"); err == nil {
		t.Fatal("failed import left the file")
	}
	// Import rejects non-linear hints.
	if err := fs.Import(ctx, bytes.NewReader(data), "/x", 10,
		core.Hint{Level: stripe.LevelMultidim}); err == nil {
		t.Fatal("non-linear import accepted")
	}
}

func TestCreateErrors(t *testing.T) {
	c := startCluster(t, 2)
	fs := newFS(t, c, 0, core.Options{})

	if _, err := fs.Create("relative", 1, []int64{8}, core.Hint{}); err == nil {
		t.Fatal("relative path accepted")
	}
	if _, err := fs.Create("/f", 1, []int64{8}, core.Hint{Level: stripe.Level(9)}); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := fs.Create("/f", 1, []int64{8}, core.Hint{Servers: []string{"nosuch"}}); err == nil {
		t.Fatal("unknown pinned server accepted")
	}
	if _, err := fs.Open("/missing"); err == nil {
		t.Fatal("open of missing file accepted")
	}
	// Array level needs pattern/grid.
	if _, err := fs.Create("/f", 1, []int64{8, 8}, core.Hint{Level: stripe.LevelArray}); err == nil {
		t.Fatal("array level without pattern accepted")
	}
	// Buffer size mismatches.
	f, err := fs.Create("/ok", 1, []int64{16}, core.Hint{BrickBytes: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx := ctxT(t)
	if err := f.WriteSection(ctx, stripe.FullSection([]int64{16}), make([]byte, 3)); err == nil {
		t.Fatal("short write buffer accepted")
	}
	if err := f.ReadSection(ctx, stripe.FullSection([]int64{16}), make([]byte, 99)); err == nil {
		t.Fatal("wrong read buffer accepted")
	}
}

func TestDefaultPlacementIsGreedyOnHeterogeneous(t *testing.T) {
	dir := t.TempDir()
	c, err := cluster.Start(cluster.Config{Servers: cluster.Mixed(4), Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fs, err := c.NewFS(0, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	f, err := fs.Create("/het", 1, []int64{1 << 20}, core.Hint{BrickBytes: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Info().Placement; got != "greedy" {
		t.Errorf("placement = %q, want greedy on a mixed cluster", got)
	}
	f2, err := fs.Create("/hom", 1, []int64{1 << 20},
		core.Hint{BrickBytes: 1 << 14, Servers: f.Info().Servers[:1]})
	if err != nil {
		t.Fatal(err)
	}
	if got := f2.Info().Placement; got != "round-robin" {
		t.Errorf("placement = %q, want round-robin on a single server", got)
	}
}

// TestServerFailure: killing one I/O server makes accesses fail
// cleanly with an error naming the server, not hang or corrupt.
func TestServerFailure(t *testing.T) {
	c := startCluster(t, 3)
	fs := newFS(t, c, 0, core.Options{Combine: true})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	f, err := fs.Create("/frag", 1, []int64{12 << 10}, core.Hint{BrickBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteAt(ctx, pattern(12<<10), 0); err != nil {
		t.Fatal(err)
	}
	c.IOServers[1].Close()

	buf := make([]byte, 12<<10)
	if err := f.ReadAt(ctx, buf, 0); err == nil {
		t.Fatal("read with a dead server should fail")
	}
	// Bricks on surviving servers still readable.
	assignSrv := f.Info().Servers
	_ = assignSrv
	if err := f.ReadAt(ctx, buf[:1024], 0); err != nil {
		// brick 0 lives on server 0 (round-robin), which is alive
		t.Fatalf("read from surviving server failed: %v", err)
	}
}

// TestRandomizedSectionsAgainstReference writes a full random array and
// checks dozens of random section reads against an in-memory
// reference, across all levels, with combination on.
func TestRandomizedSectionsAgainstReference(t *testing.T) {
	c := startCluster(t, 4)
	fs := newFS(t, c, 0, core.Options{Combine: true, Stagger: true})
	ctx := ctxT(t)
	r := rand.New(rand.NewSource(42))

	dims := []int64{48, 36}
	ref := pattern(48 * 36 * 4)
	hints := []core.Hint{
		{Level: stripe.LevelLinear, BrickBytes: 777},
		{Level: stripe.LevelMultidim, Tile: []int64{7, 9}},
		{Level: stripe.LevelArray, Pattern: []stripe.Dist{stripe.DistBlock, stripe.DistBlock}, Grid: []int64{5, 3}},
	}
	for hi, hint := range hints {
		f, err := fs.Create(fmt.Sprintf("/rand%d", hi), 4, dims, hint)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.WriteSection(ctx, stripe.FullSection(dims), ref); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 25; i++ {
			r0 := int64(r.Intn(48))
			c0 := int64(r.Intn(36))
			sec := stripe.NewSection(
				[]int64{r0, c0},
				[]int64{1 + int64(r.Intn(int(48-r0))), 1 + int64(r.Intn(int(36-c0)))})
			buf := make([]byte, sec.Bytes(4))
			if err := f.ReadSection(ctx, sec, buf); err != nil {
				t.Fatal(err)
			}
			pos := 0
			for rr := sec.Start[0]; rr < sec.Start[0]+sec.Count[0]; rr++ {
				off := (rr*36 + sec.Start[1]) * 4
				n := int(sec.Count[1] * 4)
				if !bytes.Equal(buf[pos:pos+n], ref[off:off+int64(n)]) {
					t.Fatalf("hint %d section %v row %d mismatch", hi, sec, rr)
				}
				pos += n
			}
		}
	}
}

// TestRename moves a file and verifies the data is reachable at the
// new path (catalog and subfiles both moved).
func TestRename(t *testing.T) {
	c := startCluster(t, 3)
	fs := newFS(t, c, 0, core.Options{Combine: true})
	ctx := ctxT(t)

	f, err := fs.Create("/old", 1, []int64{8 << 10}, core.Hint{BrickBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	data := pattern(8 << 10)
	if err := f.WriteAt(ctx, data, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if err := fs.Rename(ctx, "/old", "/new"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("/old"); err == nil {
		t.Fatal("old path still opens")
	}
	f2, err := fs.Open("/new")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := f2.ReadAt(ctx, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("renamed file data mismatch")
	}
	f2.Close()

	// Rename onto an existing file fails and leaves both intact.
	f3, err := fs.Create("/other", 1, []int64{1 << 10}, core.Hint{BrickBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	f3.Close()
	if err := fs.Rename(ctx, "/new", "/other"); err == nil {
		t.Fatal("rename onto existing file should succeed? no")
	}
	if _, err := fs.Open("/new"); err != nil {
		t.Fatalf("failed rename damaged source: %v", err)
	}
}

// TestCapacityAdmission: creating a file that exceeds a server's
// advertised capacity is rejected; removing files frees the
// accounting.
func TestCapacityAdmission(t *testing.T) {
	dir := t.TempDir()
	c, err := cluster.Start(cluster.Config{
		Servers: []cluster.ServerSpec{{Capacity: 64 << 10}, {Capacity: 64 << 10}},
		Dir:     dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fs, err := c.NewFS(0, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	ctx := ctxT(t)

	// 96 KiB over two 64 KiB servers fits (48 KiB each)...
	f, err := fs.Create("/fits", 1, []int64{96 << 10}, core.Hint{BrickBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	// ... but another 96 KiB does not.
	if _, err := fs.Create("/nofit", 1, []int64{96 << 10}, core.Hint{BrickBytes: 8 << 10}); err == nil {
		t.Fatal("over-capacity create accepted")
	}
	// NoCapacityCheck overrides.
	f, err = fs.Create("/forced", 1, []int64{96 << 10}, core.Hint{BrickBytes: 8 << 10, NoCapacityCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := fs.Remove(ctx, "/forced"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(ctx, "/fits"); err != nil {
		t.Fatal(err)
	}
	// Space freed: the create succeeds now.
	f, err = fs.Create("/nofit", 1, []int64{96 << 10}, core.Hint{BrickBytes: 8 << 10})
	if err != nil {
		t.Fatalf("create after free: %v", err)
	}
	f.Close()
}

// TestTypedFileViews: MPI-IO style — a strided file region (every
// other 1 KiB block) written from a strided memory layout and read
// back through a different memory type.
func TestTypedFileViews(t *testing.T) {
	c := startCluster(t, 3)
	fs := newFS(t, c, 0, core.Options{Combine: true})
	ctx := ctxT(t)

	f, err := fs.Create("/view", 1, []int64{16 << 10}, core.Hint{BrickBytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	// File view: 4 blocks of 1 KiB, stride 2 KiB, starting at 512.
	fview := datatype.Vector{Count: 4, BlockLen: 1 << 10, Stride: 2 << 10, Elem: datatype.Bytes(1)}
	// Memory: contiguous 4 KiB.
	mtype := datatype.Bytes(4 << 10)
	mem := pattern(4 << 10)
	if err := f.WriteAtTyped(ctx, 512, fview, mtype, mem); err != nil {
		t.Fatal(err)
	}

	// Plain reads see the data at the strided positions, zeros between.
	buf := make([]byte, 16<<10)
	if err := f.ReadAt(ctx, buf, 0); err != nil {
		t.Fatal(err)
	}
	for blk := 0; blk < 4; blk++ {
		fileOff := 512 + blk*2048
		if !bytes.Equal(buf[fileOff:fileOff+1024], mem[blk*1024:(blk+1)*1024]) {
			t.Fatalf("block %d mismatch", blk)
		}
	}
	if buf[0] != 0 || buf[512+1024] != 0 {
		t.Fatal("gaps were written")
	}

	// Read back through a strided memory type (scatter into every
	// other 1 KiB of an 8 KiB buffer).
	mview := datatype.Vector{Count: 4, BlockLen: 1 << 10, Stride: 2 << 10, Elem: datatype.Bytes(1)}
	out := make([]byte, 8<<10)
	if err := f.ReadAtTyped(ctx, 512, fview, mview, out); err != nil {
		t.Fatal(err)
	}
	for blk := 0; blk < 4; blk++ {
		if !bytes.Equal(out[blk*2048:blk*2048+1024], mem[blk*1024:(blk+1)*1024]) {
			t.Fatalf("scattered block %d mismatch", blk)
		}
	}

	// Errors: size mismatch, non-linear file.
	if err := f.WriteAtTyped(ctx, 0, datatype.Bytes(8), datatype.Bytes(4), mem); err == nil {
		t.Fatal("size mismatch accepted")
	}
	md, err := fs.Create("/view-md", 8, []int64{8, 8}, core.Hint{Level: stripe.LevelMultidim, Tile: []int64{4, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if err := md.WriteAtTyped(ctx, 0, datatype.Bytes(8), datatype.Bytes(8), mem); err == nil {
		t.Fatal("typed view on multidim file accepted")
	}
}

// TestContextCancellation: a shaped (slow) server must not stall a
// canceled access.
func TestContextCancellation(t *testing.T) {
	dir := t.TempDir()
	slow := cluster.ServerSpec{Class: netsim.Params{
		Name: "glacial", RequestLatency: 2 * time.Second, Bandwidth: 1 << 20}}
	c, err := cluster.Start(cluster.Config{Servers: []cluster.ServerSpec{slow}, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fs, err := c.NewFS(0, core.Options{Combine: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	f, err := fs.Create("/slow", 1, []int64{8 << 10}, core.Hint{BrickBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = f.WriteAt(ctx, make([]byte, 8<<10), 0)
	if err == nil {
		t.Fatal("write against a 2s-per-request server should have hit the deadline")
	}
	if time.Since(start) > 3*time.Second {
		t.Fatalf("cancellation took %v", time.Since(start))
	}
}
