package core_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"dpfs/internal/cluster"
	"dpfs/internal/core"
	"dpfs/internal/stripe"
)

// refFile mirrors one DPFS file's full contents in memory.
type refFile struct {
	mu   sync.Mutex
	dims []int64
	elem int64
	data []byte
}

// embedSection writes a packed section buffer into the row-major full
// array (the inverse of reading a section).
func (rf *refFile) embedSection(sec stripe.Section, packed []byte) {
	nd := len(rf.dims)
	rowBytes := sec.Count[nd-1] * rf.elem
	pos := int64(0)
	var walk func(d int, base int64)
	walk = func(d int, base int64) {
		if d == nd-1 {
			off := (base + sec.Start[d]) * rf.elem
			copy(rf.data[off:off+rowBytes], packed[pos:pos+rowBytes])
			pos += rowBytes
			return
		}
		for i := int64(0); i < sec.Count[d]; i++ {
			walk(d+1, (base+sec.Start[d]+i)*rf.dims[d+1])
		}
	}
	walk(0, 0)
}

// extract reads a packed section out of the full array.
func (rf *refFile) extract(sec stripe.Section) []byte {
	nd := len(rf.dims)
	out := make([]byte, sec.Bytes(rf.elem))
	rowBytes := sec.Count[nd-1] * rf.elem
	pos := int64(0)
	var walk func(d int, base int64)
	walk = func(d int, base int64) {
		if d == nd-1 {
			off := (base + sec.Start[d]) * rf.elem
			copy(out[pos:pos+rowBytes], rf.data[off:off+rowBytes])
			pos += rowBytes
			return
		}
		for i := int64(0); i < sec.Count[d]; i++ {
			walk(d+1, (base+sec.Start[d]+i)*rf.dims[d+1])
		}
	}
	walk(0, 0)
	return out
}

func randSection(r *rand.Rand, dims []int64) stripe.Section {
	start := make([]int64, len(dims))
	count := make([]int64, len(dims))
	for d, n := range dims {
		start[d] = int64(r.Intn(int(n)))
		count[d] = 1 + int64(r.Intn(int(n-start[d])))
	}
	return stripe.NewSection(start, count)
}

// TestStressRandomOps runs several concurrent compute clients doing
// random section writes and reads on a set of files of all three
// levels, checking every read against an in-memory reference.
func TestStressRandomOps(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	c, err := cluster.Start(cluster.Config{Servers: cluster.Uniform(4), Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := ctxT(t)

	// Fixed file population: one file per level, two goroutine-shared.
	specs := []struct {
		path string
		hint core.Hint
		dims []int64
		elem int64
	}{
		{"/lin", core.Hint{Level: stripe.LevelLinear, BrickBytes: 700}, []int64{37, 53}, 4},
		{"/md", core.Hint{Level: stripe.LevelMultidim, Tile: []int64{7, 9}}, []int64{41, 33}, 8},
		{"/arr", core.Hint{Level: stripe.LevelArray,
			Pattern: []stripe.Dist{stripe.DistBlock, stripe.DistBlock}, Grid: []int64{5, 3}}, []int64{40, 24}, 2},
	}
	refs := make(map[string]*refFile)
	admin, err := c.NewFS(0, core.Options{Combine: true})
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	for _, sp := range specs {
		f, err := admin.Create(sp.path, sp.elem, sp.dims, sp.hint)
		if err != nil {
			t.Fatal(err)
		}
		f.Close()
		n := sp.elem
		for _, d := range sp.dims {
			n *= d
		}
		refs[sp.path] = &refFile{dims: sp.dims, elem: sp.elem, data: make([]byte, n)}
	}

	const workers = 6
	const opsPerWorker = 60
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)*7919 + 13))
			opts := core.Options{Combine: w%2 == 0, Stagger: w%2 == 0, ExactReads: w%3 == 0}
			fs, err := c.NewFS(w, opts)
			if err != nil {
				errs <- err
				return
			}
			defer fs.Close()
			handles := map[string]*core.File{}
			for _, sp := range specs {
				handles[sp.path], err = fs.Open(sp.path)
				if err != nil {
					errs <- err
					return
				}
			}
			for op := 0; op < opsPerWorker; op++ {
				sp := specs[r.Intn(len(specs))]
				rf := refs[sp.path]
				f := handles[sp.path]
				sec := randSection(r, sp.dims)
				if r.Intn(2) == 0 {
					payload := make([]byte, sec.Bytes(sp.elem))
					r.Read(payload)
					// Hold the reference lock across the DPFS write so
					// reference and file system stay in step.
					rf.mu.Lock()
					err := f.WriteSection(ctx, sec, payload)
					if err == nil {
						rf.embedSection(sec, payload)
					}
					rf.mu.Unlock()
					if err != nil {
						errs <- fmt.Errorf("worker %d write %s %v: %w", w, sp.path, sec, err)
						return
					}
				} else {
					buf := make([]byte, sec.Bytes(sp.elem))
					rf.mu.Lock()
					err := f.ReadSection(ctx, sec, buf)
					var want []byte
					if err == nil {
						want = rf.extract(sec)
					}
					rf.mu.Unlock()
					if err != nil {
						errs <- fmt.Errorf("worker %d read %s %v: %w", w, sp.path, sec, err)
						return
					}
					if !bytes.Equal(buf, want) {
						errs <- fmt.Errorf("worker %d read %s %v: data mismatch", w, sp.path, sec)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Final full-array verification of every file.
	for _, sp := range specs {
		f, err := admin.Open(sp.path)
		if err != nil {
			t.Fatal(err)
		}
		full := stripe.FullSection(sp.dims)
		buf := make([]byte, full.Bytes(sp.elem))
		if err := f.ReadSection(ctx, full, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, refs[sp.path].data) {
			t.Fatalf("%s: final contents diverge from reference", sp.path)
		}
		f.Close()
	}
}

// TestStressLifecycle exercises create/rename/remove churn from
// concurrent clients without data operations racing the namespace.
func TestStressLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	c, err := cluster.Start(cluster.Config{Servers: cluster.Uniform(3), Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := ctxT(t)

	const workers = 5
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fs, err := c.NewFS(w, core.Options{Combine: true})
			if err != nil {
				errs <- err
				return
			}
			defer fs.Close()
			for i := 0; i < 20; i++ {
				p := fmt.Sprintf("/w%d-f%d", w, i)
				f, err := fs.Create(p, 1, []int64{4096}, core.Hint{BrickBytes: 512})
				if err != nil {
					errs <- err
					return
				}
				if err := f.WriteAt(ctx, bytes.Repeat([]byte{byte(i)}, 4096), 0); err != nil {
					errs <- err
					return
				}
				f.Close()
				moved := p + "-moved"
				if err := fs.Rename(ctx, p, moved); err != nil {
					errs <- err
					return
				}
				f2, err := fs.Open(moved)
				if err != nil {
					errs <- err
					return
				}
				buf := make([]byte, 4096)
				if err := f2.ReadAt(ctx, buf, 0); err != nil {
					errs <- err
					return
				}
				f2.Close()
				if buf[0] != byte(i) {
					errs <- fmt.Errorf("worker %d file %d: wrong content after rename", w, i)
					return
				}
				if i%2 == 0 {
					if err := fs.Remove(ctx, moved); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The directory reflects exactly the survivors.
	cat, err := c.NewCatalog()
	if err != nil {
		t.Fatal(err)
	}
	_, files, err := cat.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != workers*10 {
		t.Fatalf("%d files survive, want %d", len(files), workers*10)
	}
}
