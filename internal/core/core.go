// Package core implements the DPFS client engine: the layer under the
// public API that turns Open/Read/Write/Close calls into brick plans,
// groups them into (optionally combined) per-server requests, and moves
// the bytes over TCP to the I/O servers (Sections 2, 4 and 6 of the
// paper). One FS value plays the role of the DPFS client library linked
// into one compute process; its rank drives the staggered request
// schedule of Section 4.2.
package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"dpfs/internal/cache"
	"dpfs/internal/gossip"
	"dpfs/internal/meta"
	"dpfs/internal/obs"
	"dpfs/internal/server"
	"dpfs/internal/stripe"
	"dpfs/internal/wire"
)

// Options tune the client engine. The zero value reproduces the
// paper's "general approach" (per-brick requests, no combination); the
// evaluation's "Combined" bars set Combine and Stagger.
type Options struct {
	// Combine groups all bricks of an access that live on the same
	// server into one request and issues the per-server requests in
	// parallel (Section 4.2).
	Combine bool
	// Stagger starts rank r's server sweep at server r mod S so
	// clients do not convoy on one device (Section 4.2). Only
	// meaningful with Combine.
	Stagger bool
	// ExactReads disables the paper's whole-brick access model for
	// reads: instead of fetching each touched brick in full and
	// discarding the unneeded part ("the second half will be
	// discarded", Sec. 3.2), only the exact byte segments travel. The
	// paper's behaviour (false) is the default; setting it is the
	// data-sieving-style ablation.
	ExactReads bool
	// ParallelDispatch ships an access's per-server requests
	// concurrently instead of one at a time. The paper's client issues
	// its combined requests sequentially ("each compute process issues
	// its requests one at a time", Sec. 4.2) — that remains the
	// default; parallel dispatch overlaps the independent server
	// exchanges, hiding per-request network and handler latency.
	// Requests still launch in Stagger order, the first error wins,
	// and context cancellation stops the remaining exchanges.
	ParallelDispatch bool
	// MaxInflight caps how many server exchanges of one access may be
	// in flight at once under ParallelDispatch. Zero means one per
	// server of the file.
	MaxInflight int
	// Owner names the creating user in DPFS-FILE-ATTR.
	Owner string
	// Dial overrides how I/O-server connections are established (fault
	// injection, alternate transports). Nil uses plain TCP.
	Dial server.DialFunc
	// Retry tunes per-RPC timeouts, the retry/backoff ladder and the
	// per-server breaker of every I/O client this engine creates. The
	// zero value applies the server package defaults.
	Retry server.RetryPolicy
	// CacheBytes, when positive, enables the client-side brick data
	// cache: whole bricks fetched by reads are kept (LRU, bounded to
	// this many bytes) and repeated reads are served locally. The
	// engine's own writes invalidate overlapping bricks; there is no
	// cross-client coherence (see DESIGN.md §9). Zero disables caching
	// (the default — the paper's client keeps nothing).
	CacheBytes int64
	// MetaTTL, when positive, enables the client-side metadata cache:
	// Open and Stat serve file attributes, distribution rows and server
	// registrations from memory for up to this long, skipping the
	// metadata database on the hot path. The engine's own create,
	// remove and rename invalidate eagerly; other clients' changes are
	// seen after at most MetaTTL (and stale distributions are caught by
	// the servers' generation check). Zero disables the cache.
	MetaTTL time.Duration
	// Readahead, when positive (and CacheBytes is set), prefetches up
	// to this many bricks ahead of a detected sequential brick-access
	// pattern, using the parallel dispatch path in the background so
	// the next read finds its bricks already cached.
	Readahead int
	// TraceSample is the fraction of requests that get wire-propagated
	// trace identity when tracing is enabled (EnableTracing). Values
	// <= 0 or >= 1 sample every request (the default); a value in
	// (0, 1) samples that fraction. Unsampled requests still record a
	// local client-side trace, but servers see no trace context.
	TraceSample float64
	// SlowRequest, when positive, logs every traced request slower
	// than this threshold to the event log as a slow_request event
	// carrying the full stitched trace.
	SlowRequest time.Duration
	// Events receives the engine's cluster events (failovers, degraded
	// writes, retry exhaustion, breaker transitions, slow requests).
	// Nil uses the process-default log.
	Events *obs.EventLog
	// WireV2 switches every I/O client this engine creates to the
	// tagged-frame wire protocol: one multiplexed connection per
	// server carries many outstanding requests, brick payloads stream
	// as chunked DATA frames, and cancellation travels as a CANCEL
	// frame instead of killing the connection (DESIGN.md §11). Default
	// off — the v1 one-exchange-per-conn protocol.
	WireV2 bool
}

// Client-engine metric names (in the engine's obs.Registry). Latency
// histograms record microseconds.
const (
	MetricRequests       = "client_requests_total"
	MetricBytesMoved     = "client_bytes_moved_total"
	MetricBytesUseful    = "client_bytes_useful_total"
	MetricRequestLatency = "client_request_latency_us"
	// MetricInflight gauges how many server exchanges the engine has
	// in flight right now (only ever above 1 with ParallelDispatch).
	MetricInflight = "client_inflight"
	// MetricFailovers counts reads redirected to a backup replica after
	// the preferred replica's server failed at the transport level.
	MetricFailovers = "client_failovers_total"
	// MetricDegradedWrites counts writes that succeeded with fewer than
	// all replicas reachable (every brick still hit at least one).
	MetricDegradedWrites = "client_degraded_writes_total"
	// MetricFailureReports counts server failures reported to the
	// catalog's health table.
	MetricFailureReports = "client_failure_reports_total"
	// MetricDeltasApplied counts gossip server-table deltas the engine
	// decoded off piggybacked RPC responses and applied (DESIGN.md §14).
	MetricDeltasApplied = "gossip_deltas_applied_total"
	// MetricDeadHints counts servers the engine marked hinted-dead from
	// a gossip delta, letting reads fail over immediately instead of
	// waiting out a timeout or the metadata cache TTL.
	MetricDeadHints = "gossip_dead_hints_total"
	// MetricDeadHintSkips counts read exchanges redirected straight to
	// replica failover because their preferred server was hinted dead.
	MetricDeadHintSkips = "gossip_dead_hint_skips_total"
)

// FS is one compute node's DPFS client instance.
type FS struct {
	cat  meta.Router
	rank int
	opts Options

	reg    *obs.Registry
	traces *obs.TraceLog // nil unless EnableTracing was called
	events *obs.EventLog

	metaCache *cache.Meta // nil unless Options.MetaTTL > 0
	dataCache *cache.Data // nil unless Options.CacheBytes > 0

	// Readahead lifecycle: prefetch goroutines run under raCtx and are
	// tracked by raWG so Close can cancel and drain them.
	raCtx    context.Context
	raCancel context.CancelFunc
	raWG     sync.WaitGroup

	mu      sync.Mutex
	clients map[string]*server.Client // server name -> I/O client
	addrs   map[string]string         // server name -> address (cached)
	closed  bool

	// Gossip hints piggybacked on RPC responses (DESIGN.md §14): the
	// last health record seen per server name, incarnation-ordered so a
	// stale delta arriving late cannot resurrect or re-kill a server.
	hintMu sync.Mutex
	hints  map[string]serverHint
}

// serverHint is the engine's view of one server's gossip health record.
type serverHint struct {
	inc   int64
	state string
}

// NewFS builds a client around a catalog connection — a single
// *meta.Catalog or a sharded meta.ShardRouter, the engine cannot tell
// the difference. rank is the compute-node rank used for staggered
// scheduling.
func NewFS(cat meta.Router, rank int, opts Options) *FS {
	if opts.Owner == "" {
		opts.Owner = "dpfs"
	}
	fs := &FS{
		cat:     cat,
		rank:    rank,
		opts:    opts,
		reg:     obs.NewRegistry(),
		events:  opts.Events,
		clients: make(map[string]*server.Client),
		addrs:   make(map[string]string),
		hints:   make(map[string]serverHint),
	}
	if fs.events == nil {
		fs.events = obs.Events()
	}
	if opts.MetaTTL > 0 {
		fs.metaCache = cache.NewMeta(opts.MetaTTL, fs.reg)
	}
	if opts.CacheBytes > 0 {
		fs.dataCache = cache.NewData(opts.CacheBytes, fs.reg)
	}
	fs.raCtx, fs.raCancel = context.WithCancel(context.Background())
	return fs
}

// Metrics returns the engine's metric registry (per-Client counters
// and the request latency histogram).
func (fs *FS) Metrics() *obs.Registry { return fs.reg }

// SetMetrics replaces the engine's registry, letting several clients
// aggregate into one (the bench harness shares a registry across all
// compute ranks). Call before issuing I/O.
func (fs *FS) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	fs.reg = reg
	if fs.metaCache != nil {
		fs.metaCache.SetMetrics(reg)
	}
	if fs.dataCache != nil {
		fs.dataCache.SetMetrics(reg)
	}
}

// EnableTracing starts recording request traces into a ring of the
// given capacity and returns the log. Each traced client request
// carries one child span per contacted server with its brick count and
// byte total — the observable form of Section 4.2's request
// combination.
func (fs *FS) EnableTracing(capacity int) *obs.TraceLog {
	fs.traces = obs.NewTraceLog(capacity)
	return fs.traces
}

// TraceLog returns the engine's trace log (nil when tracing is off).
func (fs *FS) TraceLog() *obs.TraceLog { return fs.traces }

// Events returns the engine's cluster event log (never nil).
func (fs *FS) Events() *obs.EventLog { return fs.events }

// metaSpan starts a traced root span for one metadata operation and
// arms the catalog connection's trace propagation, so a remote
// metadata database's spans come back stitched below it. The returned
// func finishes the span; it is a no-op when tracing is off or the
// operation was not sampled. Propagation is best-effort and
// last-setter-wins — concurrent metadata operations may attach to each
// other's parents, which skews attribution but never correctness.
func (fs *FS) metaSpan(op, path string) func() {
	if !fs.sample() {
		return func() {}
	}
	root := obs.NewRootSpan("client.meta")
	root.Op = op
	root.Path = path
	fs.cat.SetTraceSpan(root)
	return func() {
		fs.cat.SetTraceSpan(nil)
		root.End()
		fs.traces.Add(&obs.Trace{Root: root})
	}
}

// sample reports whether the next traced request should carry
// wire-propagated trace identity, per Options.TraceSample.
func (fs *FS) sample() bool {
	if fs.traces == nil {
		return false
	}
	ts := fs.opts.TraceSample
	if ts <= 0 || ts >= 1 {
		return true
	}
	return rand.Float64() < ts
}

// Stats returns this engine's own traffic counters. Unlike the
// package-level ReadStats (a process-wide aggregate kept for
// compatibility), these cannot be corrupted by other clients in the
// same process.
func (fs *FS) Stats() Stats {
	return Stats{
		Requests:         fs.reg.Counter(MetricRequests).Value(),
		BytesTransferred: fs.reg.Counter(MetricBytesMoved).Value(),
		BytesUseful:      fs.reg.Counter(MetricBytesUseful).Value(),
	}
}

// Catalog exposes the underlying catalog surface (used by the shell
// and admin tools).
func (fs *FS) Catalog() meta.Router { return fs.cat }

// Rank returns the compute-node rank.
func (fs *FS) Rank() int { return fs.rank }

// Options returns the engine options.
func (fs *FS) Options() Options { return fs.opts }

// Close cancels in-flight readahead and drops all pooled server
// connections.
func (fs *FS) Close() error {
	fs.raCancel()
	fs.raWG.Wait()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.closed = true
	for _, c := range fs.clients {
		c.Close()
	}
	fs.clients = make(map[string]*server.Client)
	return nil
}

// client returns (creating if needed) the I/O client for a server
// name.
func (fs *FS) client(name string) (*server.Client, error) {
	fs.mu.Lock()
	if fs.closed {
		fs.mu.Unlock()
		return nil, errors.New("dpfs: file system client closed")
	}
	if c, ok := fs.clients[name]; ok {
		fs.mu.Unlock()
		return c, nil
	}
	addr, ok := fs.addrs[name]
	fs.mu.Unlock()
	if !ok && fs.metaCache != nil {
		if si, hit := fs.metaCache.GetServer(name); hit {
			addr, ok = si.Addr, true
		}
	}
	if !ok {
		si, err := fs.cat.Server(name)
		if err != nil {
			return nil, err
		}
		if fs.metaCache != nil {
			fs.metaCache.PutServer(si)
		}
		addr = si.Addr
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return nil, errors.New("dpfs: file system client closed")
	}
	if c, ok := fs.clients[name]; ok {
		return c, nil
	}
	fs.addrs[name] = addr
	// Size the idle-connection pool to the dispatch fan-out so a
	// parallel burst's connections are kept, not redialed every access.
	idle := server.DefaultMaxIdleConns
	if n := fs.opts.MaxInflight; n > idle {
		idle = n
	}
	c := server.NewClientWith(addr, server.ClientConfig{
		MaxIdleConns: idle,
		Dial:         fs.opts.Dial,
		Retry:        fs.opts.Retry,
		Metrics:      fs.reg,
		Events:       fs.events,
		WireV2:       fs.opts.WireV2,
		OnDelta:      fs.ApplyDelta,
	})
	fs.clients[name] = c
	return c, nil
}

// ApplyDelta folds a gossip server-table delta piggybacked on an RPC
// response into the engine's server view (DESIGN.md §14). The delta is
// best-effort cargo: anything that does not decode is dropped without
// touching the carrying RPC. Applied records update cached server
// addresses and maintain the hinted-dead set that lets reads skip
// straight to replica failover instead of waiting out a timeout. The
// engine's I/O clients call it for every piggybacked delta; tests and
// admin tooling may inject deltas directly.
func (fs *FS) ApplyDelta(delta []byte) {
	recs, err := gossip.DecodeDelta(delta)
	if err != nil || len(recs) == 0 {
		return
	}
	fs.reg.Counter(MetricDeltasApplied).Inc()
	for i := range recs {
		fs.applyServerRecord(&recs[i])
	}
}

// applyServerRecord applies one gossip health record: incarnation-
// ordered hint maintenance plus address refresh for servers that
// re-registered somewhere else.
func (fs *FS) applyServerRecord(rec *gossip.Record) {
	if rec.Name == "" {
		return
	}
	fs.refreshAddr(rec.Name, rec.Addr)

	fs.hintMu.Lock()
	cur, ok := fs.hints[rec.Name]
	if ok && rec.Inc < cur.inc {
		fs.hintMu.Unlock()
		return // stale: an older incarnation cannot override a newer one
	}
	wasDead := ok && cur.state == gossip.StateDead
	fs.hints[rec.Name] = serverHint{inc: rec.Inc, state: rec.State}
	fs.hintMu.Unlock()

	switch rec.State {
	case gossip.StateDead:
		if !wasDead {
			fs.reg.Counter(MetricDeadHints).Inc()
			fs.events.Emit(obs.EventGossipSuspect, "client", map[string]string{
				"server": rec.Name,
				"state":  rec.State,
				"inc":    fmt.Sprint(rec.Inc),
			})
		}
	case gossip.StateSuspect:
		if !ok || (cur.state != gossip.StateSuspect && cur.state != gossip.StateDead) {
			fs.events.Emit(obs.EventGossipSuspect, "client", map[string]string{
				"server": rec.Name,
				"state":  rec.State,
				"inc":    fmt.Sprint(rec.Inc),
			})
		}
	}
}

// refreshAddr updates the engine's cached address for a server when a
// gossip record shows it registered somewhere else, dropping the stale
// pooled client so the next request dials the new address.
func (fs *FS) refreshAddr(name, addr string) {
	if addr == "" {
		return
	}
	fs.mu.Lock()
	old, ok := fs.addrs[name]
	var stale *server.Client
	if ok && old != addr {
		fs.addrs[name] = addr
		stale = fs.clients[name]
		delete(fs.clients, name)
	}
	fs.mu.Unlock()
	if stale != nil {
		stale.Close()
	}
	if ok && old != addr && fs.metaCache != nil {
		if si, hit := fs.metaCache.GetServer(name); hit {
			si.Addr = addr
			fs.metaCache.PutServer(si)
		}
	}
}

// hintedDead reports whether gossip last marked a server dead. Used by
// the read path to pre-fail exchanges that would otherwise burn a full
// RPC timeout discovering what the cluster already knows.
func (fs *FS) hintedDead(name string) bool {
	fs.hintMu.Lock()
	defer fs.hintMu.Unlock()
	return fs.hints[name].state == gossip.StateDead
}

// DeadHints returns the names of servers currently hinted dead by
// gossip (sorted; for debug endpoints and tests).
func (fs *FS) DeadHints() []string {
	fs.hintMu.Lock()
	defer fs.hintMu.Unlock()
	var out []string
	for name, h := range fs.hints {
		if h.state == gossip.StateDead {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Hint is the DPFS-API hint structure of Section 6: the user's
// knowledge about future access conveyed to the file system at create
// time.
type Hint struct {
	// Level selects the file level; zero defaults to LevelLinear, the
	// most general.
	Level stripe.Level
	// BrickBytes is the linear brick size (default 64 KiB).
	BrickBytes int64
	// Tile is the multidimensional brick shape; when empty a square
	// tile of about 64 KiB is derived from the dims.
	Tile []int64
	// Pattern and Grid give the HPF distribution for array-level files
	// (e.g. (*, BLOCK) over 8 processors = Pattern {Star, Block}, Grid
	// {1, 8}).
	Pattern []stripe.Dist
	Grid    []int64
	// NumIONodes suggests how many I/O servers to stripe over; zero
	// uses all registered servers.
	NumIONodes int
	// Servers pins the exact server set (by name), overriding
	// NumIONodes selection. Used by benchmarks that want a specific
	// class mix.
	Servers []string
	// Placement overrides the striping algorithm; nil picks greedy
	// when the chosen servers have heterogeneous performance numbers
	// and round-robin otherwise.
	Placement stripe.Placement
	// Perm is the file permission (default 0644).
	Perm int
	// NoCapacityCheck skips the DPFS-SERVER capacity admission check
	// at create time.
	NoCapacityCheck bool
	// Replicas is the file's replication factor R: every brick is
	// placed on R distinct servers, writes fan out to all replicas and
	// reads fail over between them. 0 or 1 means unreplicated (the
	// default, today's behavior); R must not exceed the server count.
	Replicas int
}

// DefaultLinearBrick is the linear brick size used when the hint does
// not specify one.
const DefaultLinearBrick = 64 << 10

// File is an open DPFS file handle.
type File struct {
	fs     *FS
	info   meta.FileInfo
	rs     *stripe.ReplicaSet // full replica layout, [brick][rank]
	assign []int              // brick -> preferred (rank-0) server index
	stats  fileStats
	closed bool

	// Readahead state (used only when the engine has a data cache and
	// Options.Readahead > 0): the handle watches its own read pattern
	// and prefetches ahead of a sequential brick walk.
	raMu   sync.Mutex
	raLast int  // last brick of the previous read; -1 = no reads yet
	raHigh int  // highest brick already scheduled for prefetch
	raBusy bool // one prefetch batch in flight at a time
}

// newFile builds a handle around a looked-up (or freshly created) file
// record.
func newFile(fs *FS, fi meta.FileInfo, rs *stripe.ReplicaSet) *File {
	return &File{
		fs:     fs,
		info:   fi,
		rs:     rs,
		assign: rs.Primary(),
		raLast: -1,
		raHigh: -1,
	}
}

// Info returns the file's meta data.
func (f *File) Info() meta.FileInfo { return f.info }

// Stats returns the traffic this handle generated.
func (f *File) Stats() Stats {
	return Stats{
		Requests:         f.stats.requests.Load(),
		BytesTransferred: f.stats.transferred.Load(),
		BytesUseful:      f.stats.useful.Load(),
	}
}

// Geometry returns the file's brick geometry.
func (f *File) Geometry() *stripe.Geometry { return &f.info.Geometry }

// Assignment returns the file's preferred (rank-0) brick→server-index
// assignment (do not mutate).
func (f *File) Assignment() []int { return f.assign }

// Replicas returns the file's full replica layout (do not mutate).
func (f *File) Replicas() *stripe.ReplicaSet { return f.rs }

// Create makes a new DPFS file holding an array of the given element
// size and dims, striped per the hint, and opens it.
func (fs *FS) Create(path string, elemSize int64, dims []int64, hint Hint) (*File, error) {
	defer fs.metaSpan("create", path)()
	g, err := buildGeometry(elemSize, dims, &hint)
	if err != nil {
		return nil, err
	}

	infos, err := fs.selectServers(&hint)
	if err != nil {
		return nil, err
	}
	servers := make([]string, len(infos))
	perf := make([]int, len(infos))
	for i, si := range infos {
		servers[i] = si.Name
		perf[i] = si.Performance
	}
	placement := hint.Placement
	if placement == nil {
		placement = defaultPlacement(perf)
	}
	replicas := hint.Replicas
	if replicas < 1 {
		replicas = 1
	}
	assign, err := stripe.AssignReplicas(placement, g.NumBricks(), len(servers), replicas)
	if err != nil {
		return nil, err
	}
	lists := stripe.ReplicaLists(assign, len(servers))
	if !hint.NoCapacityCheck {
		if err := fs.checkCapacity(infos, g, lists); err != nil {
			return nil, err
		}
	}

	perm := hint.Perm
	if perm == 0 {
		perm = 0o644
	}
	clean, err := meta.CleanPath(path)
	if err != nil {
		return nil, err
	}
	gen, err := fs.cat.NextGeneration(clean)
	if err != nil {
		return nil, err
	}
	fi := meta.FileInfo{
		Path:       clean,
		Owner:      fs.opts.Owner,
		Perm:       perm,
		Size:       g.Size(),
		Geometry:   *g,
		Placement:  placement.Name(),
		Servers:    servers,
		Generation: gen,
		Replicas:   replicas,
	}
	if err := fs.cat.CreateReplicated(fi, assign); err != nil {
		return nil, err
	}
	rs, err := stripe.ReplicaSetFromLists(lists, g.NumBricks(), replicas)
	if err != nil {
		return nil, err
	}
	if err := fs.materialize(fi); err != nil {
		// Leave no catalog entry for a file whose generation never
		// reached the servers.
		if _, rerr := fs.cat.RemoveFile(clean); rerr != nil {
			return nil, fmt.Errorf("dpfs: create %s: %v (catalog rollback also failed: %v)", clean, err, rerr)
		}
		return nil, fmt.Errorf("dpfs: create %s: %w", clean, err)
	}
	if fs.metaCache != nil {
		fs.metaCache.PutFile(fi, rs)
	}
	if fs.dataCache != nil {
		// A path reuse (remove + create) must not serve the old
		// incarnation's bricks; generations already prevent aliasing,
		// this just frees the dead entries early.
		fs.dataCache.InvalidatePath(clean)
	}
	return newFile(fs, fi, rs), nil
}

// materialize creates each server's (empty) generationed subfile at
// create time. This arms the stale-generation check everywhere the
// file lives: a later reader holding an older cached distribution of
// the same path finds a newer generation on the server and errors,
// instead of reading the missing old subfile as zeros.
func (fs *FS) materialize(fi meta.FileInfo) error {
	for _, name := range fi.Servers {
		c, err := fs.client(name)
		if err != nil {
			return err
		}
		req := &wire.Request{
			Op:      wire.OpTruncate,
			Path:    fi.Path,
			Gen:     fi.Generation,
			Extents: []wire.Extent{{Len: 0}},
		}
		if _, err := c.Do(context.Background(), req); err != nil {
			return err
		}
	}
	return nil
}

// Open opens an existing DPFS file, serving the lookup from the
// metadata cache when one is enabled.
func (fs *FS) Open(path string) (*File, error) {
	defer fs.metaSpan("open", path)()
	clean, err := meta.CleanPath(path)
	if err != nil {
		return nil, err
	}
	if fs.metaCache != nil {
		if fi, rs, ok := fs.metaCache.GetFile(clean); ok {
			return newFile(fs, fi, rs), nil
		}
	}
	fi, rs, err := fs.cat.LookupReplicated(clean)
	if err != nil {
		return nil, err
	}
	if fs.metaCache != nil {
		fs.metaCache.PutFile(fi, rs)
	}
	return newFile(fs, fi, rs), nil
}

// Stat returns a file's attributes, served from the metadata cache
// when one is enabled (a cache miss loads and caches the full record,
// so a following Open is free too).
func (fs *FS) Stat(path string) (meta.FileInfo, error) {
	defer fs.metaSpan("stat", path)()
	clean, err := meta.CleanPath(path)
	if err != nil {
		return meta.FileInfo{}, err
	}
	if fs.metaCache == nil {
		return fs.cat.Stat(clean)
	}
	if fi, _, ok := fs.metaCache.GetFile(clean); ok {
		return fi, nil
	}
	fi, rs, err := fs.cat.LookupReplicated(clean)
	if err != nil {
		return meta.FileInfo{}, err
	}
	fs.metaCache.PutFile(fi, rs)
	return fi, nil
}

// InvalidateMeta drops a path from the metadata cache. Mutations that
// go to the catalog directly (chmod, chown, size updates) call it so
// cached attributes do not outlive the change by more than they must;
// with no cache enabled it is a no-op.
func (fs *FS) InvalidateMeta(path string) {
	if fs.metaCache == nil {
		return
	}
	if clean, err := meta.CleanPath(path); err == nil {
		fs.metaCache.InvalidateFile(clean)
	}
}

// Remove deletes a DPFS file: its catalog rows and every server's
// subfile.
func (fs *FS) Remove(ctx context.Context, path string) error {
	fi, err := fs.cat.RemoveFile(path)
	if err != nil {
		return err
	}
	if fs.metaCache != nil {
		fs.metaCache.InvalidateFile(fi.Path)
	}
	if fs.dataCache != nil {
		fs.dataCache.InvalidatePath(fi.Path)
	}
	var firstErr error
	for _, name := range fi.Servers {
		c, err := fs.client(name)
		if err == nil {
			_, err = c.Do(ctx, &wire.Request{Op: wire.OpRemove, Path: fi.Path, Gen: fi.Generation})
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Rename moves a DPFS file: the catalog records switch atomically,
// then each server's subfile is renamed to the new name (the paper
// keys subfiles by the DPFS path). If any server rename fails the
// catalog rename is reverted before the error is returned.
func (fs *FS) Rename(ctx context.Context, oldPath, newPath string) error {
	cleanOld, err := meta.CleanPath(oldPath)
	if err != nil {
		return err
	}
	cleanNew, err := meta.CleanPath(newPath)
	if err != nil {
		return err
	}
	servers, gen, err := fs.cat.RenameFile(cleanOld, cleanNew)
	if err != nil {
		return err
	}
	if fs.metaCache != nil {
		fs.metaCache.InvalidateFile(cleanOld)
		fs.metaCache.InvalidateFile(cleanNew)
	}
	if fs.dataCache != nil {
		fs.dataCache.InvalidatePath(cleanOld)
		fs.dataCache.InvalidatePath(cleanNew)
	}
	renamed := make([]string, 0, len(servers))
	for _, name := range servers {
		c, err := fs.client(name)
		if err == nil {
			_, err = c.Do(ctx, &wire.Request{Op: wire.OpRename, Path: cleanOld, Gen: gen, Data: []byte(cleanNew)})
		}
		if err != nil {
			// Roll back: subfiles already moved go back, then the
			// catalog records.
			for _, done := range renamed {
				if c2, e2 := fs.client(done); e2 == nil {
					_, _ = c2.Do(ctx, &wire.Request{Op: wire.OpRename, Path: cleanNew, Gen: gen, Data: []byte(cleanOld)})
				}
			}
			if _, _, rerr := fs.cat.RenameFile(cleanNew, cleanOld); rerr != nil {
				return fmt.Errorf("dpfs: rename %s: %v (catalog rollback also failed: %v)", cleanOld, err, rerr)
			}
			return fmt.Errorf("dpfs: rename %s: %w", cleanOld, err)
		}
		renamed = append(renamed, name)
	}
	return nil
}

// Close releases the handle. Data is durable on the servers as soon as
// each write returns, so Close is cheap; it exists to mirror
// DPFS-Close() and catch use-after-close bugs.
func (f *File) Close() error {
	if f.closed {
		return errors.New("dpfs: file already closed")
	}
	f.closed = true
	return nil
}

// buildGeometry derives the stripe geometry from dims and the hint.
func buildGeometry(elemSize int64, dims []int64, hint *Hint) (*stripe.Geometry, error) {
	level := hint.Level
	if level == 0 {
		level = stripe.LevelLinear
	}
	g := &stripe.Geometry{Level: level, ElemSize: elemSize, Dims: append([]int64(nil), dims...)}
	switch level {
	case stripe.LevelLinear:
		g.BrickBytes = hint.BrickBytes
		if g.BrickBytes == 0 {
			g.BrickBytes = DefaultLinearBrick
		}
	case stripe.LevelMultidim:
		g.Tile = append([]int64(nil), hint.Tile...)
		if len(g.Tile) == 0 {
			g.Tile = defaultTile(elemSize, dims)
		}
	case stripe.LevelArray:
		g.Pattern = append([]stripe.Dist(nil), hint.Pattern...)
		g.Grid = append([]int64(nil), hint.Grid...)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// defaultTile picks a near-square tile of roughly DefaultLinearBrick
// bytes.
func defaultTile(elemSize int64, dims []int64) []int64 {
	nd := len(dims)
	target := int64(DefaultLinearBrick) / elemSize
	if target < 1 {
		target = 1
	}
	side := int64(1)
	for side*side <= target {
		side++
	}
	side--
	out := make([]int64, nd)
	for d := range out {
		out[d] = side
		if out[d] > dims[d] {
			out[d] = dims[d]
		}
		if out[d] < 1 {
			out[d] = 1
		}
	}
	return out
}

// selectServers picks the server set for a new file: pinned names, or
// the fastest NumIONodes of the registry.
func (fs *FS) selectServers(hint *Hint) ([]meta.ServerInfo, error) {
	if len(hint.Servers) > 0 {
		out := make([]meta.ServerInfo, len(hint.Servers))
		for i, n := range hint.Servers {
			si, err := fs.serverInfo(n)
			if err != nil {
				return nil, err
			}
			out[i] = si
		}
		return out, nil
	}
	var all []meta.ServerInfo
	if fs.metaCache != nil {
		if cached, ok := fs.metaCache.GetServers(); ok {
			// Copy: the cached slice is shared and the sort below
			// mutates.
			all = append([]meta.ServerInfo(nil), cached...)
		}
	}
	if all == nil {
		loaded, err := fs.cat.Servers()
		if err != nil {
			return nil, err
		}
		if fs.metaCache != nil {
			fs.metaCache.PutServers(loaded)
			loaded = append([]meta.ServerInfo(nil), loaded...)
		}
		all = loaded
	}
	if len(all) == 0 {
		return nil, errors.New("dpfs: no I/O servers registered")
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].Performance != all[j].Performance {
			return all[i].Performance < all[j].Performance
		}
		return all[i].Name < all[j].Name
	})
	n := hint.NumIONodes
	if n <= 0 || n > len(all) {
		n = len(all)
	}
	return all[:n], nil
}

// serverInfo loads one server's registration through the metadata
// cache when enabled.
func (fs *FS) serverInfo(name string) (meta.ServerInfo, error) {
	if fs.metaCache != nil {
		if si, ok := fs.metaCache.GetServer(name); ok {
			return si, nil
		}
	}
	si, err := fs.cat.Server(name)
	if err != nil {
		return meta.ServerInfo{}, err
	}
	if fs.metaCache != nil {
		fs.metaCache.PutServer(si)
	}
	return si, nil
}

// checkCapacity rejects a creation that would push any chosen server
// past its DPFS-SERVER capacity, accounting existing files by bricks x
// slot bytes through the catalog (replicas count once per copy, so the
// admission check prices in write amplification). Concurrent creations
// may both pass the check (admission is advisory, like the paper's
// capacity attribute); the subfile stores are sparse so an
// over-admitted file degrades space, not correctness.
func (fs *FS) checkCapacity(infos []meta.ServerInfo, g *stripe.Geometry, lists [][]stripe.ReplicaEntry) error {
	used, err := fs.cat.UsedBytes()
	if err != nil {
		return err
	}
	slot := g.SlotBytes()
	for i, si := range infos {
		need := int64(len(lists[i])) * slot
		if used[si.Name]+need > si.Capacity {
			return fmt.Errorf("dpfs: server %q lacks capacity: %d used + %d needed > %d",
				si.Name, used[si.Name], need, si.Capacity)
		}
	}
	return nil
}

// defaultPlacement is greedy on heterogeneous servers, round-robin on
// uniform ones (where greedy degenerates to round-robin anyway).
func defaultPlacement(perf []int) stripe.Placement {
	uniform := true
	for _, p := range perf[1:] {
		if p != perf[0] {
			uniform = false
			break
		}
	}
	if uniform {
		return stripe.RoundRobin{}
	}
	return stripe.Greedy{Perf: perf}
}
