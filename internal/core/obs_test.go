package core_test

import (
	"testing"

	"dpfs/internal/core"
	"dpfs/internal/stripe"
)

// TestPerClientStatsIsolation is the regression test for the old
// global-counter bug: two clients in one process used to share the
// package-wide atomics, so one client's traffic corrupted another's
// measurements. FS.Stats and File.Stats must count only their owner's
// traffic.
func TestPerClientStatsIsolation(t *testing.T) {
	c := startCluster(t, 4)
	ctx := ctxT(t)
	busy := newFS(t, c, 0, core.Options{Combine: true})
	idle := newFS(t, c, 1, core.Options{Combine: true})

	f, err := busy.Create("/iso.bin", 1, []int64{1 << 16}, core.Hint{Level: stripe.LevelLinear, BrickBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data := pattern(1 << 16)
	if err := f.WriteAt(ctx, data, 0); err != nil {
		t.Fatal(err)
	}

	st := busy.Stats()
	if st.Requests == 0 || st.BytesUseful != 1<<16 {
		t.Fatalf("busy client stats = %+v", st)
	}
	if got := idle.Stats(); got != (core.Stats{}) {
		t.Fatalf("idle client picked up traffic: %+v", got)
	}
	if fst := f.Stats(); fst.Requests != st.Requests || fst.BytesUseful != st.BytesUseful {
		t.Fatalf("file stats %+v != fs stats %+v", fst, st)
	}
	// The request latency histogram recorded one sample per request.
	snap := busy.Metrics().Snapshot()
	lat := snap.Histograms[core.MetricRequestLatency]
	if lat.Count != st.Requests {
		t.Fatalf("latency samples = %d, requests = %d", lat.Count, st.Requests)
	}
}

// TestRequestTraceSpans checks that a traced combined request records
// one server.rpc child span per contacted server, each carrying its
// brick count.
func TestRequestTraceSpans(t *testing.T) {
	const servers = 4
	c := startCluster(t, servers)
	ctx := ctxT(t)
	fs := newFS(t, c, 0, core.Options{Combine: true})
	log := fs.EnableTracing(16)

	// 8 bricks round-robin over 4 servers: every server is contacted.
	f, err := fs.Create("/traced.bin", 1, []int64{8 * 4096},
		core.Hint{Level: stripe.LevelLinear, BrickBytes: 4096, Placement: stripe.RoundRobin{}})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.WriteAt(ctx, pattern(8*4096), 0); err != nil {
		t.Fatal(err)
	}

	tr := log.Last()
	if tr == nil {
		t.Fatal("no trace recorded")
	}
	root := tr.Root
	if root.Name != "client.request" || root.Op != "write" || root.Path != "/traced.bin" {
		t.Fatalf("root span = %+v", root)
	}
	if root.Duration <= 0 {
		t.Fatal("root span not ended")
	}
	kids := root.Children()
	if len(kids) != servers {
		t.Fatalf("got %d server.rpc spans, want %d:\n%s", len(kids), servers, tr)
	}
	seen := map[string]bool{}
	var bricks int
	for _, sp := range kids {
		if sp.Name != "server.rpc" {
			t.Fatalf("child span named %q", sp.Name)
		}
		if sp.Server == "" || seen[sp.Server] {
			t.Fatalf("bad or duplicate server in span %+v", sp)
		}
		seen[sp.Server] = true
		if sp.Bricks != 2 { // 8 bricks round-robin over 4 servers
			t.Fatalf("span for %s has %d bricks, want 2", sp.Server, sp.Bricks)
		}
		if sp.Bytes == 0 || sp.Duration <= 0 {
			t.Fatalf("span not filled in: %+v", sp)
		}
		bricks += sp.Bricks
	}
	if bricks != 8 || root.Bricks != 8 {
		t.Fatalf("brick totals: children %d, root %d, want 8", bricks, root.Bricks)
	}
}
