package core_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"dpfs/internal/core"
	"dpfs/internal/stripe"
)

// TestParallelDispatchConcurrentClients runs several goroutine clients
// with parallel dispatch against one cluster: every roundtrip must be
// byte-exact, and the per-file counters must sum to exactly the
// process-wide aggregate delta (run under -race this also exercises the
// engine's concurrent scatter path).
func TestParallelDispatchConcurrentClients(t *testing.T) {
	const np = 4
	const size = 8 * 4096
	c := startCluster(t, 4)
	ctx := ctxT(t)

	before := core.ReadStats()
	files := make([]*core.File, np)
	for r := 0; r < np; r++ {
		fs := newFS(t, c, r, core.Options{Combine: true, Stagger: true, ParallelDispatch: true})
		f, err := fs.Create(fmt.Sprintf("/par-%d.bin", r), 1, []int64{size},
			core.Hint{Level: stripe.LevelLinear, BrickBytes: 4096, Placement: stripe.RoundRobin{}})
		if err != nil {
			t.Fatal(err)
		}
		files[r] = f
	}
	t.Cleanup(func() {
		for _, f := range files {
			f.Close()
		}
	})

	var wg sync.WaitGroup
	errs := make(chan error, np)
	for r := 0; r < np; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			data := make([]byte, size)
			for i := range data {
				data[i] = byte(i*7 + r)
			}
			if err := files[r].WriteAt(ctx, data, 0); err != nil {
				errs <- err
				return
			}
			got := make([]byte, size)
			if err := files[r].ReadAt(ctx, got, 0); err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, data) {
				errs <- fmt.Errorf("rank %d: roundtrip mismatch", r)
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	after := core.ReadStats()
	var perFile core.Stats
	for _, f := range files {
		st := f.Stats()
		perFile.Requests += st.Requests
		perFile.BytesTransferred += st.BytesTransferred
		perFile.BytesUseful += st.BytesUseful
	}
	delta := core.Stats{
		Requests:         after.Requests - before.Requests,
		BytesTransferred: after.BytesTransferred - before.BytesTransferred,
		BytesUseful:      after.BytesUseful - before.BytesUseful,
	}
	if perFile != delta {
		t.Fatalf("per-file sum %+v != process-wide delta %+v", perFile, delta)
	}
	if perFile.BytesUseful != np*2*size {
		t.Fatalf("useful bytes = %d, want %d", perFile.BytesUseful, np*2*size)
	}
}

// TestParallelStaggerLaunchOrder pins MaxInflight to 1 so the launch
// loop is fully deterministic: with Stagger, the per-server spans of a
// traced access must appear in rotation order starting at rank mod S.
func TestParallelStaggerLaunchOrder(t *testing.T) {
	const servers = 4
	c := startCluster(t, servers)
	ctx := ctxT(t)
	names := c.ServerNames()

	for rank := 0; rank < servers; rank++ {
		fs := newFS(t, c, rank, core.Options{
			Combine: true, Stagger: true,
			ParallelDispatch: true, MaxInflight: 1,
		})
		log := fs.EnableTracing(4)
		f, err := fs.Create(fmt.Sprintf("/stag-%d.bin", rank), 1, []int64{8 * 4096},
			core.Hint{Level: stripe.LevelLinear, BrickBytes: 4096, Placement: stripe.RoundRobin{}})
		if err != nil {
			t.Fatal(err)
		}
		if err := f.WriteAt(ctx, pattern(8*4096), 0); err != nil {
			t.Fatal(err)
		}
		f.Close()

		tr := log.Last()
		if tr == nil {
			t.Fatal("no trace recorded")
		}
		kids := tr.Root.Children()
		if len(kids) != servers {
			t.Fatalf("rank %d: got %d server.rpc spans, want %d", rank, len(kids), servers)
		}
		for i, sp := range kids {
			want := names[(rank+i)%servers]
			if sp.Server != want {
				t.Fatalf("rank %d: launch %d hit %s, want %s", rank, i, sp.Server, want)
			}
		}
	}
}

// TestParallelSequentialByteIdentical is the equivalence quickcheck:
// for random sections of a 2-D file, writes dispatched in parallel and
// reads dispatched sequentially (and vice versa) must observe exactly
// the same bytes as an in-memory reference array.
func TestParallelSequentialByteIdentical(t *testing.T) {
	const n = 64
	c := startCluster(t, 4)
	ctx := ctxT(t)
	seqFS := newFS(t, c, 0, core.Options{Combine: true, Stagger: true})
	parFS := newFS(t, c, 1, core.Options{Combine: true, Stagger: true, ParallelDispatch: true})

	mk := newFS(t, c, 2, core.Options{Combine: true})
	f0, err := mk.Create("/equiv", 4, []int64{n, n}, core.Hint{Level: stripe.LevelMultidim, Tile: []int64{8, 8}})
	if err != nil {
		t.Fatal(err)
	}
	f0.Close()
	seqF, err := seqFS.Open("/equiv")
	if err != nil {
		t.Fatal(err)
	}
	defer seqF.Close()
	parF, err := parFS.Open("/equiv")
	if err != nil {
		t.Fatal(err)
	}
	defer parF.Close()

	ref := make([]byte, n*n*4)
	rng := rand.New(rand.NewSource(42))
	randSection := func() stripe.Section {
		r0 := rng.Int63n(n)
		c0 := rng.Int63n(n)
		return stripe.Section{
			Start: []int64{r0, c0},
			Count: []int64{1 + rng.Int63n(n-r0), 1 + rng.Int63n(n-c0)},
		}
	}
	extract := func(sec stripe.Section) []byte {
		out := make([]byte, sec.Bytes(4))
		pos := 0
		for r := sec.Start[0]; r < sec.Start[0]+sec.Count[0]; r++ {
			off := (r*n + sec.Start[1]) * 4
			rowLen := int(sec.Count[1] * 4)
			copy(out[pos:pos+rowLen], ref[off:])
			pos += rowLen
		}
		return out
	}
	embed := func(sec stripe.Section, data []byte) {
		pos := 0
		for r := sec.Start[0]; r < sec.Start[0]+sec.Count[0]; r++ {
			off := (r*n + sec.Start[1]) * 4
			rowLen := int(sec.Count[1] * 4)
			copy(ref[off:], data[pos:pos+rowLen])
			pos += rowLen
		}
	}

	for iter := 0; iter < 25; iter++ {
		wsec := randSection()
		data := make([]byte, wsec.Bytes(4))
		rng.Read(data)
		writer, reader := parF, seqF
		if iter%2 == 1 {
			writer, reader = seqF, parF
		}
		if err := writer.WriteSection(ctx, wsec, data); err != nil {
			t.Fatal(err)
		}
		embed(wsec, data)

		rsec := randSection()
		got := make([]byte, rsec.Bytes(4))
		if err := reader.ReadSection(ctx, rsec, got); err != nil {
			t.Fatal(err)
		}
		if want := extract(rsec); !bytes.Equal(got, want) {
			t.Fatalf("iter %d: section %v read mismatch (wrote %v via parallel=%v)",
				iter, rsec, wsec, iter%2 == 0)
		}
	}
}

// TestParallelDispatchCancellation: a cancelled context must fail the
// access with a context error, and the engine must stay usable for the
// next call.
func TestParallelDispatchCancellation(t *testing.T) {
	c := startCluster(t, 4)
	fs := newFS(t, c, 0, core.Options{Combine: true, ParallelDispatch: true})

	f, err := fs.Create("/cancel.bin", 1, []int64{8 * 4096},
		core.Hint{Level: stripe.LevelLinear, BrickBytes: 4096, Placement: stripe.RoundRobin{}})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if err := f.WriteAt(dead, pattern(8*4096), 0); err == nil {
		t.Fatal("write with cancelled context succeeded")
	}

	ctx := ctxT(t)
	data := pattern(8 * 4096)
	if err := f.WriteAt(ctx, data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := f.ReadAt(ctx, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("roundtrip after cancellation mismatch")
	}
}

// TestParallelDispatchFirstError: when every server is gone, a parallel
// access must report an error (the first one observed) rather than
// succeed or hang.
func TestParallelDispatchFirstError(t *testing.T) {
	c := startCluster(t, 4)
	ctx := ctxT(t)
	fs := newFS(t, c, 0, core.Options{Combine: true, ParallelDispatch: true})

	f, err := fs.Create("/err.bin", 1, []int64{8 * 4096},
		core.Hint{Level: stripe.LevelLinear, BrickBytes: 4096, Placement: stripe.RoundRobin{}})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.WriteAt(ctx, pattern(8*4096), 0); err != nil {
		t.Fatal(err)
	}

	c.Close() // servers down: every in-flight exchange now fails
	if err := f.ReadAt(ctx, make([]byte, 8*4096), 0); err == nil {
		t.Fatal("read against closed cluster succeeded")
	}
}
