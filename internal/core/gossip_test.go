package core_test

import (
	"bytes"
	"testing"

	"dpfs/internal/core"
	"dpfs/internal/gossip"
	"dpfs/internal/obs"
	"dpfs/internal/stripe"
)

// stateDelta encodes a delta placing every named server in the given
// state at the given incarnation, with its real registered address.
func stateDelta(t *testing.T, fs *core.FS, names []string, inc int64, state string) []byte {
	t.Helper()
	recs := make([]gossip.Record, len(names))
	for i, n := range names {
		si, err := fs.Catalog().Server(n)
		if err != nil {
			t.Fatal(err)
		}
		recs[i] = gossip.Record{Name: n, Addr: si.Addr, Inc: inc, State: state}
	}
	return gossip.EncodeDelta(recs)
}

// TestGossipDeadHintFailover pins the TTL-bypass behaviour of
// DESIGN.md §14: once a delta marks a server dead, reads of a
// replicated file skip that server entirely and go straight to its
// backup replicas — no RPC timeout, no waiting out the metadata cache.
func TestGossipDeadHintFailover(t *testing.T) {
	c := startCluster(t, 3)
	fs := newFS(t, c, 0, core.Options{Combine: true})
	ctx := ctxT(t)

	f, err := fs.Create("/hint.bin", 1, []int64{1 << 15},
		core.Hint{Level: stripe.LevelLinear, BrickBytes: 4096, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	data := pattern(1 << 15)
	if err := f.WriteAt(ctx, data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 1<<15)
	if err := f.ReadAt(ctx, got, 0); err != nil {
		t.Fatal(err)
	}
	if v := fs.Metrics().Counter(core.MetricDeadHintSkips).Value(); v != 0 {
		t.Fatalf("unhinted read skipped %d exchanges", v)
	}

	// Every server hinted dead: the preferred replicas are skipped, and
	// because failover targets are still tried (hints steer, they do
	// not amputate), the read completes off the rank-1 copies.
	fs.ApplyDelta(stateDelta(t, fs, c.ServerNames(), 1, gossip.StateDead))
	if hints := fs.DeadHints(); len(hints) != len(c.ServerNames()) {
		t.Fatalf("dead hints = %v, want all %d servers", hints, len(c.ServerNames()))
	}
	if err := f.ReadAt(ctx, got, 0); err != nil {
		t.Fatalf("read with all servers hinted dead: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("failover read returned wrong data")
	}
	if v := fs.Metrics().Counter(core.MetricDeadHintSkips).Value(); v == 0 {
		t.Fatal("hinted read did not skip any preferred exchange")
	}
	if v := fs.Metrics().Counter(core.MetricFailovers).Value(); v == 0 {
		t.Fatal("hinted read recorded no failover")
	}
	if evs := fs.Events().ByType(obs.EventGossipSuspect); len(evs) == 0 {
		t.Fatal("dead hints emitted no gossip_suspect event")
	}

	// Refutation at a higher incarnation clears the hints and reads go
	// direct again.
	fs.ApplyDelta(stateDelta(t, fs, c.ServerNames(), 2, gossip.StateAlive))
	if hints := fs.DeadHints(); len(hints) != 0 {
		t.Fatalf("hints survived refutation: %v", hints)
	}
	skipsBefore := fs.Metrics().Counter(core.MetricDeadHintSkips).Value()
	if err := f.ReadAt(ctx, got, 0); err != nil {
		t.Fatal(err)
	}
	if v := fs.Metrics().Counter(core.MetricDeadHintSkips).Value(); v != skipsBefore {
		t.Fatal("refuted hints still skipped exchanges")
	}
}

// TestApplyDeltaRobustness pins the best-effort contract from the
// client side: garbage deltas are ignored without side effects, and a
// stale dead record cannot override a newer alive incarnation.
func TestApplyDeltaRobustness(t *testing.T) {
	c := startCluster(t, 2)
	fs := newFS(t, c, 0, core.Options{})
	names := c.ServerNames()

	dead := stateDelta(t, fs, names, 1, gossip.StateDead)
	for _, junk := range [][]byte{
		nil,
		{},
		[]byte("not a delta"),
		dead[:5],
		append(append([]byte(nil), dead...), 0xFF),
	} {
		fs.ApplyDelta(junk)
	}
	if hints := fs.DeadHints(); len(hints) != 0 {
		t.Fatalf("garbage deltas installed hints: %v", hints)
	}
	if v := fs.Metrics().Counter(core.MetricDeadHints).Value(); v != 0 {
		t.Fatalf("garbage deltas counted %d dead hints", v)
	}

	// Alive at incarnation 5, then a stale dead at incarnation 3: the
	// older record must not re-kill the server.
	fs.ApplyDelta(stateDelta(t, fs, names[:1], 5, gossip.StateAlive))
	fs.ApplyDelta(stateDelta(t, fs, names[:1], 3, gossip.StateDead))
	if hints := fs.DeadHints(); len(hints) != 0 {
		t.Fatalf("stale dead record installed hints: %v", hints)
	}

	// A genuinely newer dead record does take effect, once.
	fs.ApplyDelta(stateDelta(t, fs, names[:1], 6, gossip.StateDead))
	fs.ApplyDelta(stateDelta(t, fs, names[:1], 6, gossip.StateDead))
	if hints := fs.DeadHints(); len(hints) != 1 || hints[0] != names[0] {
		t.Fatalf("dead hints = %v, want [%s]", hints, names[0])
	}
	if v := fs.Metrics().Counter(core.MetricDeadHints).Value(); v != 1 {
		t.Fatalf("duplicate dead record double-counted: %d", v)
	}
}
