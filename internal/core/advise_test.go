package core_test

import (
	"testing"

	"dpfs/internal/core"
	"dpfs/internal/stripe"
)

func TestAdviseWholeChunks(t *testing.T) {
	h := core.Advise(8, []int64{1024, 1024}, core.AccessPattern{
		WholeChunks: true,
		Pattern:     []stripe.Dist{stripe.DistBlock, stripe.DistStar},
		Grid:        []int64{8, 1},
	})
	if h.Level != stripe.LevelArray {
		t.Fatalf("level = %v, want array", h.Level)
	}
	if len(h.Pattern) != 2 || h.Grid[0] != 8 {
		t.Fatalf("hint = %+v", h)
	}
}

func TestAdviseSectionShape(t *testing.T) {
	// Column access: tall-thin sections should yield tall-thin tiles.
	h := core.Advise(8, []int64{4096, 4096}, core.AccessPattern{
		SectionShape: []int64{4096, 64},
	})
	if h.Level != stripe.LevelMultidim {
		t.Fatalf("level = %v, want multidim", h.Level)
	}
	if len(h.Tile) != 2 || h.Tile[0] <= h.Tile[1] {
		t.Fatalf("tile = %v, want taller than wide", h.Tile)
	}
	// The brick stays near the target size.
	if b := h.Tile[0] * h.Tile[1] * 8; b > core.DefaultLinearBrick*2 {
		t.Fatalf("brick = %d bytes, way over target", b)
	}
	// The hint actually creates a working file.
	c := startCluster(t, 2)
	fs := newFS(t, c, 0, core.Options{Combine: true})
	f, err := fs.Create("/advised", 8, []int64{4096, 4096}, h)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Row access gets wide tiles.
	h = core.Advise(8, []int64{4096, 4096}, core.AccessPattern{
		SectionShape: []int64{64, 4096},
	})
	if h.Tile[1] <= h.Tile[0] {
		t.Fatalf("tile = %v, want wider than tall", h.Tile)
	}
}

func TestAdviseSmallSectionsGrow(t *testing.T) {
	// Tiny sections must not force tiny bricks: the tile grows toward
	// the target while keeping within dims.
	h := core.Advise(8, []int64{4096, 4096}, core.AccessPattern{
		SectionShape: []int64{4, 4},
	})
	if b := h.Tile[0] * h.Tile[1] * 8; b < core.DefaultLinearBrick/4 {
		t.Fatalf("brick = %d bytes, too small for a useful access unit", b)
	}
}

func TestAdviseDefaultLinear(t *testing.T) {
	h := core.Advise(1, []int64{1 << 20}, core.AccessPattern{Sequential: true})
	if h.Level != stripe.LevelLinear || h.BrickBytes != core.DefaultLinearBrick {
		t.Fatalf("hint = %+v", h)
	}
	// Nothing known at all: linear too.
	h = core.Advise(1, []int64{1 << 20}, core.AccessPattern{})
	if h.Level != stripe.LevelLinear {
		t.Fatalf("hint = %+v", h)
	}
	// Rank mismatch in section shape falls back to linear.
	h = core.Advise(8, []int64{64, 64}, core.AccessPattern{SectionShape: []int64{64}})
	if h.Level != stripe.LevelLinear {
		t.Fatalf("hint = %+v", h)
	}
	// Custom brick target.
	h = core.Advise(1, []int64{1 << 20}, core.AccessPattern{Sequential: true, TargetBrickBytes: 1 << 20})
	if h.BrickBytes != 1<<20 {
		t.Fatalf("brick = %d", h.BrickBytes)
	}
}
