package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dpfs/internal/cache"
	"dpfs/internal/datatype"
	"dpfs/internal/obs"
	"dpfs/internal/server"
	"dpfs/internal/stripe"
	"dpfs/internal/wire"
)

// Stats count the engine's traffic since creation; benchmarks and
// tests use them to verify the request-combination and whole-brick
// behaviours.
type Stats struct {
	// Requests is the number of network requests issued to I/O
	// servers.
	Requests int64
	// BytesTransferred counts payload bytes moved over the network
	// (including discarded parts of whole-brick reads).
	BytesTransferred int64
	// BytesUseful counts the bytes the application actually asked for.
	BytesUseful int64
}

// fileStats are one handle's traffic counters.
type fileStats struct {
	requests    atomic.Int64
	transferred atomic.Int64
	useful      atomic.Int64
}

// The authoritative counters live on each FS (see FS.Stats) and File
// (File.Stats); these process-wide atomics remain as a compatibility
// aggregate behind the package-level ReadStats/ResetStats shims.
// Single-client callers see identical numbers; multi-client processes
// should prefer the per-engine accessors, which cannot be corrupted by
// another client's traffic.
var (
	statRequests    atomic.Int64
	statTransferred atomic.Int64
	statUseful      atomic.Int64
)

// ReadStats returns process-wide aggregate traffic counters
// (compatibility shim; prefer FS.Stats for per-client numbers).
func ReadStats() Stats {
	return Stats{
		Requests:         statRequests.Load(),
		BytesTransferred: statTransferred.Load(),
		BytesUseful:      statUseful.Load(),
	}
}

// ResetStats zeroes the process-wide aggregate counters. Per-engine
// registries are unaffected.
func ResetStats() {
	statRequests.Store(0)
	statTransferred.Store(0)
	statUseful.Store(0)
}

// WriteSection writes the packed section data into the file region sec.
// data holds sec's elements in row-major order of the section.
func (f *File) WriteSection(ctx context.Context, sec stripe.Section, data []byte) error {
	if f.closed {
		return fmt.Errorf("dpfs: %s: file closed", f.info.Path)
	}
	g := &f.info.Geometry
	if want := sec.Bytes(g.ElemSize); int64(len(data)) != want {
		return fmt.Errorf("dpfs: %s: section %v needs %d bytes, buffer has %d", f.info.Path, sec, want, len(data))
	}
	plan, err := g.PlanSection(sec)
	if err != nil {
		return err
	}
	return f.execute(ctx, plan, data, true)
}

// ReadSection reads the file region sec into buf (packed row-major
// order of the section).
func (f *File) ReadSection(ctx context.Context, sec stripe.Section, buf []byte) error {
	if f.closed {
		return fmt.Errorf("dpfs: %s: file closed", f.info.Path)
	}
	g := &f.info.Geometry
	if want := sec.Bytes(g.ElemSize); int64(len(buf)) != want {
		return fmt.Errorf("dpfs: %s: section %v needs %d bytes, buffer has %d", f.info.Path, sec, want, len(buf))
	}
	plan, err := g.PlanSection(sec)
	if err != nil {
		return err
	}
	return f.execute(ctx, plan, buf, false)
}

// WriteAt writes p at byte offset off of a linear file (DPFS-Write
// with a contiguous datatype).
func (f *File) WriteAt(ctx context.Context, p []byte, off int64) error {
	if f.closed {
		return fmt.Errorf("dpfs: %s: file closed", f.info.Path)
	}
	plan, err := f.info.Geometry.PlanExtents([]stripe.Extent{{Off: off, Len: int64(len(p))}})
	if err != nil {
		return err
	}
	return f.execute(ctx, plan, p, true)
}

// ReadAt reads len(p) bytes at byte offset off of a linear file.
func (f *File) ReadAt(ctx context.Context, p []byte, off int64) error {
	if f.closed {
		return fmt.Errorf("dpfs: %s: file closed", f.info.Path)
	}
	plan, err := f.info.Geometry.PlanExtents([]stripe.Extent{{Off: off, Len: int64(len(p))}})
	if err != nil {
		return err
	}
	return f.execute(ctx, plan, p, false)
}

// WriteTyped gathers non-contiguous data described by the derived
// datatype t from mem and writes it into the file region sec
// (DPFS-Write with an MPI-style derived datatype, Section 6).
func (f *File) WriteTyped(ctx context.Context, sec stripe.Section, t datatype.Type, mem []byte) error {
	want := sec.Bytes(f.info.Geometry.ElemSize)
	if t.Size() != want {
		return fmt.Errorf("dpfs: %s: datatype selects %d bytes, section %v needs %d",
			f.info.Path, t.Size(), sec, want)
	}
	packed, err := datatype.Pack(t, mem)
	if err != nil {
		return err
	}
	return f.WriteSection(ctx, sec, packed)
}

// ReadTyped reads the file region sec and scatters it into mem
// following the derived datatype t.
func (f *File) ReadTyped(ctx context.Context, sec stripe.Section, t datatype.Type, mem []byte) error {
	want := sec.Bytes(f.info.Geometry.ElemSize)
	if t.Size() != want {
		return fmt.Errorf("dpfs: %s: datatype selects %d bytes, section %v needs %d",
			f.info.Path, t.Size(), sec, want)
	}
	packed := make([]byte, want)
	if err := f.ReadSection(ctx, sec, packed); err != nil {
		return err
	}
	return datatype.Unpack(t, packed, mem)
}

// WriteAtTyped is the full MPI-IO-style call for linear files: mtype
// selects the (possibly non-contiguous) bytes in client memory, ftype
// selects the (possibly non-contiguous) file region starting at byte
// offset off — the analogue of an MPI file view. Both types must
// select the same number of bytes.
func (f *File) WriteAtTyped(ctx context.Context, off int64, ftype datatype.Type, mtype datatype.Type, mem []byte) error {
	exts, err := f.viewExtents(off, ftype, mtype)
	if err != nil {
		return err
	}
	packed, err := datatype.Pack(mtype, mem)
	if err != nil {
		return err
	}
	plan, err := f.info.Geometry.PlanExtents(exts)
	if err != nil {
		return err
	}
	return f.execute(ctx, plan, packed, true)
}

// ReadAtTyped reads the file region selected by ftype at off and
// scatters it into mem following mtype.
func (f *File) ReadAtTyped(ctx context.Context, off int64, ftype datatype.Type, mtype datatype.Type, mem []byte) error {
	exts, err := f.viewExtents(off, ftype, mtype)
	if err != nil {
		return err
	}
	packed := make([]byte, ftype.Size())
	plan, err := f.info.Geometry.PlanExtents(exts)
	if err != nil {
		return err
	}
	if err := f.execute(ctx, plan, packed, false); err != nil {
		return err
	}
	return datatype.Unpack(mtype, packed, mem)
}

func (f *File) viewExtents(off int64, ftype, mtype datatype.Type) ([]stripe.Extent, error) {
	if f.closed {
		return nil, fmt.Errorf("dpfs: %s: file closed", f.info.Path)
	}
	if f.info.Geometry.Level != stripe.LevelLinear {
		return nil, fmt.Errorf("dpfs: %s: typed file views require a linear file, have %v",
			f.info.Path, f.info.Geometry.Level)
	}
	if ftype.Size() != mtype.Size() {
		return nil, fmt.Errorf("dpfs: %s: file type selects %d bytes, memory type %d",
			f.info.Path, ftype.Size(), mtype.Size())
	}
	segs := datatype.Segments(ftype)
	exts := make([]stripe.Extent, len(segs))
	for i, s := range segs {
		exts[i] = stripe.Extent{Off: off + s.Off, Len: s.Len}
	}
	return exts, nil
}

// ExecutePlan ships a raw brick plan against the file: every segment
// moves between brick storage and buf. This is the entry point for
// layers that compute their own plans, such as the two-phase
// collective I/O in internal/collective; ordinary callers use the
// section and byte APIs.
func (f *File) ExecutePlan(ctx context.Context, plan []stripe.BrickIO, buf []byte, write bool) error {
	if f.closed {
		return fmt.Errorf("dpfs: %s: file closed", f.info.Path)
	}
	return f.execute(ctx, plan, buf, write)
}

// execute ships a plan to the servers. By default each compute process
// issues its requests one at a time, exactly as in the paper: the
// general approach sends one request per brick in brick order;
// combination groups all of a server's bricks into one request and
// (with Stagger) starts the sweep at server rank mod S so concurrent
// clients do not convoy on the same device (Section 4.2). With
// Options.ParallelDispatch the per-server requests instead launch
// concurrently (still in Stagger order, bounded by MaxInflight),
// overlapping the independent server exchanges; the sequential mode
// remains the paper-faithful baseline.
func (f *File) execute(ctx context.Context, plan []stripe.BrickIO, buf []byte, write bool) error {
	if len(plan) == 0 {
		return nil
	}
	opts := f.fs.opts

	var useful int64
	for _, bio := range plan {
		useful += bio.Bytes()
	}
	statUseful.Add(useful)
	f.fs.reg.Counter(MetricBytesUseful).Add(useful)
	f.stats.useful.Add(useful)

	// Serve read bricks held by the data cache locally; only the
	// remainder travels. fullPlan keeps the original access for write
	// invalidation and readahead pattern detection.
	fullPlan := plan
	if !write && f.fs.dataCache != nil {
		plan = f.serveFromCache(plan, buf)
	}

	opName := "read"
	if write {
		opName = "write"
	}
	var root *obs.Span
	if f.fs.traces != nil {
		if f.fs.sample() {
			// Sampled: the root carries wire-propagatable identity, so
			// every server exchange below ships the trace context and
			// the servers' spans come back stitched under this tree.
			root = obs.NewRootSpan("client.request")
		} else {
			root = obs.NewSpan("client.request")
		}
		root.Op = opName
		root.Path = f.info.Path
		root.Bricks = len(fullPlan)
		root.Bytes = useful
	}

	var err error
	if len(plan) > 0 {
		if write && f.rs.Replicas() > 1 {
			err = f.writeReplicated(ctx, plan, buf, opName, root)
		} else {
			var reqs []stripe.Request
			if opts.Combine {
				reqs = stripe.Combine(plan, f.assign)
				if opts.Stagger {
					reqs = stripe.Stagger(reqs, f.fs.rank, len(f.info.Servers))
				}
			} else {
				reqs = stripe.PerBrick(plan, f.assign)
			}
			if opts.ParallelDispatch && len(reqs) > 1 {
				err = f.dispatchParallel(ctx, reqs, buf, write, opName, root)
			} else {
				err = f.dispatchSequential(ctx, reqs, buf, write, opName, root)
			}
		}
	}
	if root != nil {
		root.End()
		f.fs.traces.Add(&obs.Trace{Root: root})
		if sr := f.fs.opts.SlowRequest; sr > 0 && root.Duration >= sr {
			f.fs.events.EmitTrace(obs.EventSlowRequest, "client", root.TraceID, map[string]string{
				"op":     opName,
				"path":   f.info.Path,
				"dur_us": fmt.Sprint(root.Duration.Microseconds()),
				"trace":  (&obs.Trace{Root: root}).String(),
			})
		}
	}
	if write && f.fs.dataCache != nil {
		// Invalidate overlapping bricks even on error: a failed
		// dispatch may still have written some servers. Ordering with
		// concurrent fills is safe — any fill whose bytes could predate
		// this write also took its token before now, so it is poisoned.
		gen := f.info.Generation
		for _, bio := range fullPlan {
			f.fs.dataCache.Invalidate(cache.BrickKey{Path: f.info.Path, Gen: gen, Brick: bio.Brick})
		}
	}
	if err == nil && !write {
		f.triggerReadahead(fullPlan)
	}
	return err
}

// serveFromCache copies cached whole bricks of a read plan into buf
// and returns the plan's remainder (bricks that must travel). The
// cache stores only whole bricks, so a hit serves every segment of its
// brick regardless of read mode.
func (f *File) serveFromCache(plan []stripe.BrickIO, buf []byte) []stripe.BrickIO {
	dc := f.fs.dataCache
	g := &f.info.Geometry
	gen := f.info.Generation
	rest := make([]stripe.BrickIO, 0, len(plan))
	for _, bio := range plan {
		data, ok := dc.Get(cache.BrickKey{Path: f.info.Path, Gen: gen, Brick: bio.Brick})
		if !ok || int64(len(data)) != g.BrickBytesOf(bio.Brick) {
			rest = append(rest, bio)
			continue
		}
		for _, seg := range bio.Segs {
			copy(buf[seg.MemOff:seg.MemOff+seg.Len], data[seg.BrickOff:seg.BrickOff+seg.Len])
		}
	}
	return rest
}

// rpcSpan starts the per-server trace span for one request; nil when
// tracing is off.
func (f *File) rpcSpan(root *obs.Span, r *stripe.Request, opName string) *obs.Span {
	if root == nil {
		return nil
	}
	sp := root.Child("server.rpc")
	sp.Op = opName
	sp.Server = f.info.Servers[r.Server]
	sp.Bricks = len(r.Bricks)
	return sp
}

// dispatchSequential is the paper's execution model: one server
// exchange at a time, stopping at the first error.
func (f *File) dispatchSequential(ctx context.Context, reqs []stripe.Request, buf []byte, write bool, opName string, root *obs.Span) error {
	gauge := f.fs.reg.Gauge(MetricInflight)
	for i := range reqs {
		sp := f.rpcSpan(root, &reqs[i], opName)
		gauge.Inc()
		err := f.doExchange(ctx, &reqs[i], buf, write, sp)
		gauge.Dec()
		if sp != nil {
			sp.End()
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// dispatchParallel overlaps the per-server exchanges of one access:
// each request runs in its own goroutine, at most max in flight.
// Launch order follows the (possibly staggered) request order — slots
// are acquired in order, so under a tight MaxInflight the sweep still
// starts at rank mod S. The first error wins and cancels the
// remaining exchanges. Requests of one plan cover disjoint bricks, so
// the concurrent scatters into buf touch disjoint regions.
func (f *File) dispatchParallel(ctx context.Context, reqs []stripe.Request, buf []byte, write bool, opName string, root *obs.Span) error {
	max := f.fs.opts.MaxInflight
	if max <= 0 {
		max = len(f.info.Servers)
	}
	if max > len(reqs) {
		max = len(reqs)
	}
	if max < 1 {
		max = 1
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sem := make(chan struct{}, max)
	gauge := f.fs.reg.Gauge(MetricInflight)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
launch:
	for i := range reqs {
		select {
		case sem <- struct{}{}:
		case <-cctx.Done():
			break launch // error or caller cancellation: stop launching
		}
		sp := f.rpcSpan(root, &reqs[i], opName) // created here: span order = launch order
		gauge.Inc()
		wg.Add(1)
		go func(r *stripe.Request, sp *obs.Span) {
			defer wg.Done()
			defer gauge.Dec()
			defer func() { <-sem }()
			err := f.doExchange(cctx, r, buf, write, sp)
			if sp != nil {
				sp.End()
			}
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
					cancel()
				}
				mu.Unlock()
			}
		}(&reqs[i], sp)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if firstErr == nil && ctx.Err() != nil {
		return ctx.Err()
	}
	return firstErr
}

// transportFailure reports whether err is a transport-class failure
// eligible for replica failover: the server could not be reached,
// timed out, answered garbage, or its breaker is open — as opposed to
// an application-level error the server itself returned (stale
// generation, bad request), which every replica would repeat, or a
// cancellation of the caller's own context.
func transportFailure(ctx context.Context, err error) bool {
	if err == nil || ctx.Err() != nil {
		return false
	}
	return !server.IsServerError(err)
}

// reportFailure best-effort marks a server suspect in the catalog's
// health table so probes and repair prioritize it. Catalog errors are
// swallowed: health reporting must never fail an I/O that the replica
// machinery already saved.
func (f *File) reportFailure(name string) {
	if ctx := f.fs.raCtx; ctx != nil && ctx.Err() != nil {
		return
	}
	if err := f.fs.cat.ReportServerFailure(name); err == nil {
		f.fs.reg.Counter(MetricFailureReports).Inc()
	}
}

// errHintedDead seeds replica failover for read exchanges pre-failed
// by a gossip dead hint: the preferred server was skipped, not tried.
// It surfaces only if every backup replica also fails.
var errHintedDead = errors.New("dpfs: preferred server hinted dead by gossip")

// doExchange performs one server exchange and, for reads of a
// replicated file, fails over to backup replicas when the preferred
// server fails at the transport level. A preferred server that gossip
// already marked dead is not even tried: the read goes straight to its
// backup replicas instead of burning an RPC timeout rediscovering the
// failure (DESIGN.md §14).
func (f *File) doExchange(ctx context.Context, r *stripe.Request, buf []byte, write bool, sp *obs.Span) error {
	if !write && f.rs.Replicas() > 1 && f.fs.hintedDead(f.info.Servers[r.Server]) {
		f.fs.reg.Counter(MetricDeadHintSkips).Inc()
		return f.failoverRead(ctx, r, buf, errHintedDead, sp)
	}
	err := f.doRequest(ctx, r, buf, write, sp)
	if err == nil || write || f.rs.Replicas() == 1 || !transportFailure(ctx, err) {
		return err
	}
	return f.failoverRead(ctx, r, buf, err, sp)
}

// failoverRead retries the bricks of a failed read exchange on their
// remaining replicas, rank by rank: the bricks are regrouped by their
// rank-k server into fresh combined requests, and a retry that itself
// fails at the transport level pushes its bricks on to rank k+1.
// Application errors propagate immediately; exhausting all R ranks
// returns the last transport error. Each redirected request is
// recorded as a failover event and, when the exchange was traced, as a
// child span nested under the failed RPC's span.
func (f *File) failoverRead(ctx context.Context, failed *stripe.Request, buf []byte, cause error, sp *obs.Span) error {
	from := f.info.Servers[failed.Server]
	f.reportFailure(from)
	pending := failed.Bricks
	lastErr := cause
	for rank := 1; rank < f.rs.Replicas() && len(pending) > 0; rank++ {
		reqs := stripe.Combine(pending, f.rs.RankAssignment(rank))
		var next []stripe.BrickIO
		for i := range reqs {
			to := f.info.Servers[reqs[i].Server]
			f.fs.reg.Counter(MetricFailovers).Inc()
			f.fs.events.EmitTrace(obs.EventFailover, "client", traceIDOf(sp), map[string]string{
				"path":   f.info.Path,
				"from":   from,
				"to":     to,
				"rank":   fmt.Sprint(rank),
				"bricks": fmt.Sprint(len(reqs[i].Bricks)),
			})
			var fsp *obs.Span
			if sp != nil {
				fsp = sp.Child("server.rpc")
				fsp.Op = "failover"
				fsp.Server = to
				fsp.Bricks = len(reqs[i].Bricks)
			}
			err := f.doRequest(ctx, &reqs[i], buf, false, fsp)
			if fsp != nil {
				fsp.End()
			}
			if err == nil {
				continue
			}
			if !transportFailure(ctx, err) {
				return err
			}
			f.reportFailure(to)
			next = append(next, reqs[i].Bricks...)
			lastErr = err
		}
		pending = next
	}
	if len(pending) > 0 {
		return lastErr
	}
	return nil
}

// traceIDOf returns a span's trace ID, or zero for nil/untraced spans.
func traceIDOf(sp *obs.Span) uint64 {
	if sp == nil {
		return 0
	}
	return sp.TraceID
}

// writeReplicated fans a write access out to every replica rank: rank
// k's bricks are grouped into per-server requests exactly like the
// primary copy's, and all ranks' requests run through the configured
// sequential or parallel dispatch without stopping at the first
// failure. A brick's write succeeds when at least one replica accepted
// it; transport failures on other replicas degrade the write (counted
// in client_degraded_writes and reported to the health table) instead
// of failing it. Application errors — which every replica would repeat
// — and bricks with zero surviving copies fail the access; the caller
// invalidates the cache either way, so a partially landed write can
// never be served stale.
func (f *File) writeReplicated(ctx context.Context, plan []stripe.BrickIO, buf []byte, opName string, root *obs.Span) error {
	opts := f.fs.opts
	var reqs []stripe.Request
	for rank := 0; rank < f.rs.Replicas(); rank++ {
		var rr []stripe.Request
		if opts.Combine {
			rr = stripe.Combine(plan, f.rs.RankAssignment(rank))
			if opts.Stagger {
				rr = stripe.Stagger(rr, f.fs.rank, len(f.info.Servers))
			}
		} else {
			rr = stripe.PerBrick(plan, f.rs.RankAssignment(rank))
		}
		reqs = append(reqs, rr...)
	}

	errs := make([]error, len(reqs))
	if opts.ParallelDispatch && len(reqs) > 1 {
		f.dispatchCollectParallel(ctx, reqs, buf, opName, root, errs)
	} else {
		f.dispatchCollectSequential(ctx, reqs, buf, opName, root, errs)
	}

	okCopies := make(map[int]int, len(plan))
	var appErr, transErr error
	for i := range reqs {
		err := errs[i]
		if err == nil {
			for _, b := range reqs[i].Bricks {
				okCopies[b.Brick]++
			}
			continue
		}
		if !transportFailure(ctx, err) {
			if appErr == nil {
				appErr = err
			}
			continue
		}
		transErr = err
		f.reportFailure(f.info.Servers[reqs[i].Server])
	}
	if appErr != nil {
		return appErr
	}
	for _, bio := range plan {
		if okCopies[bio.Brick] == 0 {
			if transErr != nil {
				return transErr
			}
			if err := ctx.Err(); err != nil {
				return err
			}
			return fmt.Errorf("dpfs: %s: brick %d: every replica write failed", f.info.Path, bio.Brick)
		}
	}
	if transErr != nil {
		f.fs.reg.Counter(MetricDegradedWrites).Inc()
		f.fs.events.EmitTrace(obs.EventDegradedWrite, "client", traceIDOf(root), map[string]string{
			"path": f.info.Path,
			"err":  transErr.Error(),
		})
	}
	return nil
}

// dispatchCollectSequential runs every request to completion in order,
// recording each outcome in errs (parallel to reqs) instead of
// stopping at the first error — replicated writes need every replica's
// verdict to tell a degraded write from a lost brick.
func (f *File) dispatchCollectSequential(ctx context.Context, reqs []stripe.Request, buf []byte, opName string, root *obs.Span, errs []error) {
	gauge := f.fs.reg.Gauge(MetricInflight)
	for i := range reqs {
		sp := f.rpcSpan(root, &reqs[i], opName)
		gauge.Inc()
		errs[i] = f.doRequest(ctx, &reqs[i], buf, true, sp)
		gauge.Dec()
		if sp != nil {
			sp.End()
		}
	}
}

// dispatchCollectParallel is dispatchCollectSequential's concurrent
// form: requests launch in order bounded by MaxInflight, all run to
// completion, and no error cancels the rest (a replica that can still
// accept the write must get the chance to).
func (f *File) dispatchCollectParallel(ctx context.Context, reqs []stripe.Request, buf []byte, opName string, root *obs.Span, errs []error) {
	max := f.fs.opts.MaxInflight
	if max <= 0 {
		max = len(f.info.Servers)
	}
	if max > len(reqs) {
		max = len(reqs)
	}
	if max < 1 {
		max = 1
	}
	sem := make(chan struct{}, max)
	gauge := f.fs.reg.Gauge(MetricInflight)
	var wg sync.WaitGroup
	for i := range reqs {
		sem <- struct{}{}
		sp := f.rpcSpan(root, &reqs[i], opName)
		gauge.Inc()
		wg.Add(1)
		go func(i int, sp *obs.Span) {
			defer wg.Done()
			defer gauge.Dec()
			defer func() { <-sem }()
			errs[i] = f.doRequest(ctx, &reqs[i], buf, true, sp)
			if sp != nil {
				sp.End()
			}
		}(i, sp)
	}
	wg.Wait()
}

// scratchPool recycles response scratch buffers across read exchanges
// so a steady-state engine reads without per-request body allocations.
var scratchPool sync.Pool

func getScratch(n int64) []byte {
	if p, ok := scratchPool.Get().(*[]byte); ok {
		if int64(cap(*p)) >= n {
			return (*p)[:n]
		}
	}
	return make([]byte, n)
}

func putScratch(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	scratchPool.Put(&b)
}

// doRequest performs one server exchange covering all bricks of r.
// sp, when non-nil, is the trace span covering this exchange.
func (f *File) doRequest(ctx context.Context, r *stripe.Request, buf []byte, write bool, sp *obs.Span) error {
	g := &f.info.Geometry
	slot := g.SlotBytes()
	wholeBrick := !write && !f.fs.opts.ExactReads

	// Size the extent list up front: one extent per brick in
	// whole-brick mode, at most one per segment otherwise.
	nSegs := 0
	for bi := range r.Bricks {
		nSegs += len(r.Bricks[bi].Segs)
	}
	extCap := nSegs
	if wholeBrick {
		extCap = len(r.Bricks)
	}

	// Extents are built in brick-offset order: runs contiguous in
	// brick storage travel as one extent even when they gather from
	// scattered memory. Write payloads are not packed into an
	// intermediate buffer — each memory run rides as a scatter
	// segment that the wire layer flushes with vectored I/O.
	exts := make([]wire.Extent, 0, extCap)
	var segs [][]byte
	if write {
		segs = make([][]byte, 0, nSegs)
	}
	for bi := range r.Bricks {
		b := &r.Bricks[bi]
		ls := f.rs.SlotOn(b.Brick, r.Server)
		if ls < 0 {
			return fmt.Errorf("dpfs: %s: brick %d has no replica on server %s",
				f.info.Path, b.Brick, f.info.Servers[r.Server])
		}
		base := ls * slot
		if wholeBrick {
			exts = append(exts, wire.Extent{Off: base, Len: g.BrickBytesOf(b.Brick)})
			continue
		}
		for _, seg := range brickOrder(b.Segs) {
			n := len(exts)
			if n > 0 && exts[n-1].Off+exts[n-1].Len == base+seg.BrickOff {
				exts[n-1].Len += seg.Len
			} else {
				exts = append(exts, wire.Extent{Off: base + seg.BrickOff, Len: seg.Len})
			}
			if write {
				segs = append(segs, buf[seg.MemOff:seg.MemOff+seg.Len])
			}
		}
	}

	op := wire.OpRead
	if write {
		op = wire.OpWrite
	}
	client, err := f.fs.client(f.info.Servers[r.Server])
	if err != nil {
		return err
	}
	req := &wire.Request{Op: op, Path: f.info.Path, Gen: f.info.Generation, Extents: exts, Segments: segs}
	if tc := sp.Context(); tc.TraceID != 0 {
		// Propagate trace identity so the server's handler spans join
		// this trace; its span tree comes back in the response trailer.
		req.TraceID, req.SpanID, req.Sampled = tc.TraceID, tc.SpanID, tc.Sampled
	}
	var scratch []byte
	if !write {
		scratch = getScratch(wire.DataBytes(exts) + wire.RespOverhead)
		defer putScratch(scratch)
	}
	// Whole-brick read responses are eligible to fill the data cache.
	// The fill token is taken before the network exchange: an
	// invalidation that lands between here and Put poisons the fill, so
	// a concurrent writer can never be overwritten by stale read bytes.
	dc := f.fs.dataCache
	fill := !write && wholeBrick && dc != nil
	var fillTok uint64
	if fill {
		fillTok = dc.Token()
	}
	start := time.Now()
	resp, err := client.DoScratch(ctx, req, scratch)
	f.fs.reg.Histogram(MetricRequestLatency).Record(time.Since(start).Microseconds())
	if err != nil {
		return fmt.Errorf("dpfs: %s: %w", f.info.Path, err)
	}
	moved := wire.DataBytes(exts)
	statRequests.Add(1)
	statTransferred.Add(moved)
	f.fs.reg.Counter(MetricRequests).Inc()
	f.fs.reg.Counter(MetricBytesMoved).Add(moved)
	f.stats.requests.Add(1)
	f.stats.transferred.Add(moved)
	if sp != nil {
		sp.Extents = len(exts)
		sp.Bytes = moved
		if len(resp.Trace) > 0 {
			// Stitch the server's spans under this RPC span. resp.Trace
			// may alias the pooled scratch buffer, so decode (which
			// copies) must happen before the deferred putScratch runs —
			// it does: we are still inside this exchange.
			if remote, derr := obs.DecodeSpans(resp.Trace); derr == nil {
				for _, rs := range remote {
					sp.Adopt(rs)
				}
			}
		}
	}
	if write {
		return nil
	}
	if int64(len(resp.Data)) != moved {
		return fmt.Errorf("dpfs: %s: server returned %d bytes, want %d", f.info.Path, len(resp.Data), moved)
	}

	// Scatter the response into the caller's buffer.
	pos := int64(0)
	for bi := range r.Bricks {
		b := &r.Bricks[bi]
		if wholeBrick {
			blen := g.BrickBytesOf(b.Brick)
			brickData := resp.Data[pos : pos+blen]
			for _, seg := range b.Segs {
				copy(buf[seg.MemOff:seg.MemOff+seg.Len], brickData[seg.BrickOff:seg.BrickOff+seg.Len])
			}
			if fill {
				// Put copies: brickData aliases the pooled scratch.
				dc.Put(cache.BrickKey{Path: f.info.Path, Gen: f.info.Generation, Brick: b.Brick}, brickData, fillTok)
			}
			pos += blen
			continue
		}
		for _, seg := range brickOrder(b.Segs) {
			copy(buf[seg.MemOff:seg.MemOff+seg.Len], resp.Data[pos:pos+seg.Len])
			pos += seg.Len
		}
	}
	return nil
}

// brickOrder returns the segments sorted by brick offset (plans sort
// by memory offset). The common aligned cases are already in brick
// order, so the copy is skipped when possible.
func brickOrder(segs []stripe.Segment) []stripe.Segment {
	sorted := true
	for i := 1; i < len(segs); i++ {
		if segs[i].BrickOff < segs[i-1].BrickOff {
			sorted = false
			break
		}
	}
	if sorted {
		return segs
	}
	out := append([]stripe.Segment(nil), segs...)
	sort.Slice(out, func(i, j int) bool { return out[i].BrickOff < out[j].BrickOff })
	return out
}

// importChunk is the transfer unit of Import/Export.
const importChunk = 1 << 20

// Import copies size bytes from r into a new linear DPFS file at path
// (the sequential-file → DPFS direction of the Section 7 user
// interface).
func (fs *FS) Import(ctx context.Context, r io.Reader, path string, size int64, hint Hint) (err error) {
	if hint.Level == 0 {
		hint.Level = stripe.LevelLinear
	}
	if hint.Level != stripe.LevelLinear {
		return fmt.Errorf("dpfs: import requires a linear file level, have %v", hint.Level)
	}
	f, err := fs.Create(path, 1, []int64{size}, hint)
	if err != nil {
		return err
	}
	defer func() {
		cerr := f.Close()
		if err == nil {
			err = cerr
		}
		if err != nil {
			// Leave no half-imported file behind.
			_ = fs.Remove(ctx, path)
		}
	}()
	buf := make([]byte, importChunk)
	var off int64
	for off < size {
		n := importChunk
		if rem := size - off; rem < int64(n) {
			n = int(rem)
		}
		if _, err := io.ReadFull(r, buf[:n]); err != nil {
			return fmt.Errorf("dpfs: import %s: %w", path, err)
		}
		if err := f.WriteAt(ctx, buf[:n], off); err != nil {
			return err
		}
		off += int64(n)
	}
	return nil
}

// Export copies a DPFS file's full contents to w as a flat sequential
// byte stream. Multidimensional and array files are linearized
// row-major (the in-memory reorganization of Sec. 3.2).
func (fs *FS) Export(ctx context.Context, w io.Writer, path string) error {
	f, err := fs.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	g := &f.info.Geometry

	if g.Level == stripe.LevelLinear && len(g.Dims) == 1 {
		buf := make([]byte, importChunk)
		size := g.Size()
		var off int64
		for off < size {
			n := int64(importChunk)
			if rem := size - off; rem < n {
				n = rem
			}
			if err := f.ReadAt(ctx, buf[:n], off); err != nil {
				return err
			}
			if _, err := w.Write(buf[:n]); err != nil {
				return fmt.Errorf("dpfs: export %s: %w", path, err)
			}
			off += n
		}
		return nil
	}

	// Array-shaped files: stream row-block sections in row-major
	// order.
	rows := g.Dims[0]
	rowBytes := g.Size() / rows
	step := rows
	if rowBytes > 0 {
		step = importChunk / rowBytes
		if step < 1 {
			step = 1
		}
	}
	for r0 := int64(0); r0 < rows; r0 += step {
		n := step
		if rem := rows - r0; rem < n {
			n = rem
		}
		sec := stripe.FullSection(g.Dims)
		sec.Start[0] = r0
		sec.Count[0] = n
		buf := make([]byte, sec.Bytes(g.ElemSize))
		if err := f.ReadSection(ctx, sec, buf); err != nil {
			return err
		}
		if _, err := w.Write(buf); err != nil {
			return fmt.Errorf("dpfs: export %s: %w", path, err)
		}
	}
	return nil
}
