package core

import (
	"dpfs/internal/cache"
	"dpfs/internal/obs"
	"dpfs/internal/stripe"
)

// Readahead detects forward-sequential access per file handle and
// prefetches the next bricks into the data cache through the same
// striping and dispatch machinery as foreground reads, so a prefetch
// of k bricks costs one exchange per server, not k. Prefetch traffic
// runs under the engine's background context: it never blocks the
// caller, is cancelled by FS.Close, and its errors are dropped — a
// failed prefetch simply leaves the next read to fetch normally.

// triggerReadahead inspects a completed read plan and, when the handle
// is moving forward sequentially, kicks off an asynchronous prefetch
// of the following bricks. Called only after a successful read.
func (f *File) triggerReadahead(plan []stripe.BrickIO) {
	fs := f.fs
	if fs.opts.Readahead <= 0 || fs.dataCache == nil || fs.opts.ExactReads || len(plan) == 0 {
		return
	}
	lo, hi := plan[0].Brick, plan[0].Brick
	for _, bio := range plan[1:] {
		if bio.Brick < lo {
			lo = bio.Brick
		}
		if bio.Brick > hi {
			hi = bio.Brick
		}
	}
	nBricks := f.info.Geometry.NumBricks()

	f.raMu.Lock()
	seq := lo == f.raLast+1
	f.raLast = hi
	if !seq || f.raBusy {
		f.raMu.Unlock()
		return
	}
	start := hi + 1
	if f.raHigh+1 > start {
		start = f.raHigh + 1
	}
	end := hi + fs.opts.Readahead
	if end > nBricks-1 {
		end = nBricks - 1
	}
	if start > end {
		f.raMu.Unlock()
		return
	}
	f.raBusy = true
	f.raHigh = end
	f.raMu.Unlock()

	fs.raWG.Add(1)
	go func() {
		defer fs.raWG.Done()
		defer func() {
			f.raMu.Lock()
			f.raBusy = false
			f.raMu.Unlock()
		}()
		f.prefetch(start, end)
	}()
}

// prefetch fetches bricks [start, end] into the data cache. Bricks
// already cached are skipped. The BrickIOs carry no segments, so the
// exchanges fill the cache (whole-brick responses) without scattering
// anywhere.
func (f *File) prefetch(start, end int) {
	fs := f.fs
	gen := f.info.Generation
	var plan []stripe.BrickIO
	for b := start; b <= end; b++ {
		if _, ok := fs.dataCache.Get(cache.BrickKey{Path: f.info.Path, Gen: gen, Brick: b}); ok {
			continue
		}
		plan = append(plan, stripe.BrickIO{Brick: b})
	}
	if len(plan) == 0 {
		return
	}
	reqs := stripe.Combine(plan, f.assign)
	// Prefetch runs outside any caller's request, so it gets its own
	// root span: a traced readahead shows up in the log as its own
	// tree, stitched with the servers' spans like a foreground read.
	var root *obs.Span
	if fs.traces != nil {
		if fs.sample() {
			root = obs.NewRootSpan("client.readahead")
		} else {
			root = obs.NewSpan("client.readahead")
		}
		root.Op = "readahead"
		root.Path = f.info.Path
		root.Bricks = len(plan)
	}
	// Prefetch errors are intentionally dropped; see package comment.
	err := f.dispatchParallel(fs.raCtx, reqs, nil, false, "readahead", root)
	if root != nil {
		root.End()
		fs.traces.Add(&obs.Trace{Root: root})
	}
	if err == nil {
		fs.reg.Counter(cache.MetricPrefetch).Add(int64(len(plan)))
	}
}
