package core

import (
	"dpfs/internal/stripe"
)

// AccessPattern describes how an application expects to touch a file:
// the knowledge Section 3 says only the user has, in a form the
// library can turn into a file-level hint. Set the fields that apply;
// the zero value means "nothing known" and yields the most general
// (linear) level.
type AccessPattern struct {
	// Sequential access: the file is read/written as a byte stream
	// (post-processing on a workstation, log-style data).
	Sequential bool

	// WholeChunks: every process accesses exactly its chunk of the
	// HPF distribution given by Pattern/Grid — the checkpoint
	// dump/restore shape of Sec. 3.3.
	WholeChunks bool
	Pattern     []stripe.Dist
	Grid        []int64

	// SectionShape is the typical per-process section extent in
	// elements (e.g. a (*, BLOCK) column read of an NxN array by P
	// processes has shape {N, N/P}). Used to shape multidimensional
	// tiles so one access touches few bricks with little waste.
	SectionShape []int64

	// TargetBrickBytes bounds the brick size (default
	// DefaultLinearBrick).
	TargetBrickBytes int64
}

// Advise turns an access pattern into a creation hint, encoding the
// paper's guidance: array level when accesses are whole HPF chunks,
// multidimensional level with an access-shaped tile for subarray
// accesses, and the linear level otherwise.
func Advise(elemSize int64, dims []int64, ap AccessPattern) Hint {
	target := ap.TargetBrickBytes
	if target <= 0 {
		target = DefaultLinearBrick
	}

	switch {
	case ap.WholeChunks && len(ap.Pattern) == len(dims) && len(ap.Grid) == len(dims):
		return Hint{Level: stripe.LevelArray, Pattern: ap.Pattern, Grid: ap.Grid}

	case len(ap.SectionShape) == len(dims) && !ap.Sequential:
		return Hint{Level: stripe.LevelMultidim,
			Tile: shapeTile(elemSize, dims, ap.SectionShape, target)}

	default:
		return Hint{Level: stripe.LevelLinear, BrickBytes: target}
	}
}

// shapeTile derives a tile whose aspect ratio follows the access
// section (so a tall-thin column access gets a tall-thin tile) while
// keeping the brick close to target bytes.
func shapeTile(elemSize int64, dims, shape []int64, target int64) []int64 {
	nd := len(dims)
	tile := make([]int64, nd)
	for d := range tile {
		tile[d] = clamp(shape[d], 1, dims[d])
	}
	// Shrink proportionally while the brick exceeds the target,
	// trimming the largest dimension first so the access aspect is
	// kept as long as possible.
	for bytesOf(tile, elemSize) > target {
		big := 0
		for d := 1; d < nd; d++ {
			if tile[d] > tile[big] {
				big = d
			}
		}
		if tile[big] == 1 {
			break
		}
		tile[big] = (tile[big] + 1) / 2
	}
	// Grow uniformly while well under target (small sections should
	// not force tiny bricks).
	for {
		next := make([]int64, nd)
		grew := false
		for d := range tile {
			next[d] = tile[d]
			if tile[d]*2 <= dims[d] {
				next[d] = tile[d] * 2
				grew = true
			}
		}
		if !grew || bytesOf(next, elemSize) > target {
			break
		}
		tile = next
	}
	return tile
}

func bytesOf(tile []int64, elemSize int64) int64 {
	n := elemSize
	for _, t := range tile {
		n *= t
	}
	return n
}

func clamp(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
