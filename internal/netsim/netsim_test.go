package netsim

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestServiceTime(t *testing.T) {
	p := Params{RequestLatency: time.Millisecond, PerExtent: 100 * time.Microsecond, Bandwidth: 1 << 20}
	if got := p.ServiceTime(1, 0); got != time.Millisecond+100*time.Microsecond {
		t.Errorf("zero-byte request = %v", got)
	}
	if got := p.ServiceTime(1, 1<<20); got != time.Millisecond+100*time.Microsecond+time.Second {
		t.Errorf("1MiB at 1MiB/s = %v", got)
	}
	// Each extra extent adds its overhead.
	if got := p.ServiceTime(5, 0); got != time.Millisecond+500*time.Microsecond {
		t.Errorf("5-extent request = %v", got)
	}
	// Zero bandwidth charges only latency.
	p2 := Params{RequestLatency: time.Millisecond}
	if got := p2.ServiceTime(1, 1<<30); got != time.Millisecond {
		t.Errorf("no-bandwidth request = %v", got)
	}
}

// TestClassRatio checks the paper's calibration: one brick from class 1
// is about 3x faster than from class 3, and class 2 is the slowest.
func TestClassRatio(t *testing.T) {
	const brick = 512 << 10 // 512 KiB, the 256x256 float64 tile of Sec. 8
	c1 := Class1().PerBrickCost(brick)
	c2 := Class2().PerBrickCost(brick)
	c3 := Class3().PerBrickCost(brick)
	ratio := float64(c3) / float64(c1)
	if ratio < 2.5 || ratio > 3.8 {
		t.Errorf("class3/class1 per-brick ratio = %.2f, want ~3 (paper Sec. 8.2)", ratio)
	}
	if c2 <= c3 {
		t.Errorf("class2 (%v) should be slower than class3 (%v)", c2, c3)
	}
}

func TestClassByName(t *testing.T) {
	for _, name := range []string{"class1", "class2", "class3"} {
		p, ok := ClassByName(name)
		if !ok || p.Name != name {
			t.Errorf("ClassByName(%q) = %+v, %v", name, p, ok)
		}
	}
	if _, ok := ClassByName("class9"); ok {
		t.Error("unknown class resolved")
	}
}

func TestNormalizedPerf(t *testing.T) {
	const brick = 512 << 10
	perf := NormalizedPerf([]Params{Class1(), Class1(), Class3(), Class3()}, brick)
	if perf[0] != 1 || perf[1] != 1 {
		t.Errorf("fast servers perf = %v", perf)
	}
	if perf[2] != 3 || perf[3] != 3 {
		t.Errorf("slow servers perf = %v, want 3 (paper: greedy assigns 3x bricks)", perf)
	}
	if out := NormalizedPerf(nil, brick); len(out) != 0 {
		t.Errorf("empty input = %v", out)
	}
}

func TestNilModel(t *testing.T) {
	var m *Model
	d, err := m.Delay(context.Background(), 1, 1<<20)
	if err != nil || d != 0 {
		t.Errorf("nil model Delay = %v, %v", d, err)
	}
	if b, r := m.Stats(); b != 0 || r != 0 {
		t.Errorf("nil model stats = %v %d", b, r)
	}
	if p := m.Params(); p.Bandwidth != 0 {
		t.Errorf("nil model params = %+v", p)
	}
}

func TestDelayCharges(t *testing.T) {
	m := New(Params{RequestLatency: 5 * time.Millisecond})
	start := time.Now()
	if _, err := m.Delay(context.Background(), 0, 0); err != nil {
		t.Fatal(err)
	}
	if e := time.Since(start); e < 4*time.Millisecond {
		t.Errorf("delay returned after %v, want >= ~5ms", e)
	}
	busy, reqs := m.Stats()
	if reqs != 1 || busy != 5*time.Millisecond {
		t.Errorf("stats = %v %d", busy, reqs)
	}
}

// TestDeviceSerialization: N concurrent requests against one device
// must take ~N times one request's service time (the device is a
// queue, not a fountain).
func TestDeviceSerialization(t *testing.T) {
	m := New(Params{RequestLatency: 10 * time.Millisecond})
	const n = 5
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = m.Delay(context.Background(), 0, 0)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed < 45*time.Millisecond {
		t.Errorf("%d serialized 10ms requests finished in %v, want >= ~50ms", n, elapsed)
	}
}

func TestDelayContextCancel(t *testing.T) {
	m := New(Params{RequestLatency: 5 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := m.Delay(ctx, 0, 0)
	if err == nil {
		t.Fatal("expected context error")
	}
	if time.Since(start) > time.Second {
		t.Fatal("cancel did not interrupt the delay")
	}
}

// TestDelayCancelReleasesDevice: a cancelled request must hand its
// unserviced reservation back, so the device is not left busy for the
// remainder of an abandoned transfer.
func TestDelayCancelReleasesDevice(t *testing.T) {
	// 1 MiB/s: a 2 MiB request reserves the device for ~2s.
	m := New(Params{Bandwidth: 1 << 20})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := m.Delay(ctx, 1, 2<<20); err == nil {
		t.Fatal("cancelled Delay returned nil error")
	}
	// The next request must see a nearly idle device, not a 2s queue.
	start := time.Now()
	if _, err := m.Delay(context.Background(), 1, 1); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("request after cancellation queued %v, want ~0 (reservation not released)", d)
	}
	// Accounting: busy time reflects only the serviced part.
	busy, reqs := m.Stats()
	if reqs != 2 {
		t.Fatalf("reqs = %d, want 2", reqs)
	}
	if busy > time.Second {
		t.Fatalf("busy = %v, want well under the 2s aborted cost", busy)
	}
}
