// Package netsim models the heterogeneous storage and network speeds of
// the paper's testbed. The original evaluation used three classes of
// external storage: class 1, Linux boxes at Argonne on a Fast
// Ethernet+ATM LAN; class 2, HP workstations on a 10 Mb Ethernet; and
// class 3, SUN workstations on a 155 Mb ATM metropolitan link (Section
// 8). Those machines are not reproducible, so each simulated DPFS
// server carries a Model that charges virtual service time per request:
// a fixed per-request latency plus a byte-proportional transfer cost,
// serialized per device ("the actual I/O has to be sequentialized
// locally due to the nature of sequential storage device", Sec. 4.2).
//
// The presets are calibrated to the paper's stated ratio that accessing
// a brick from class 1 is about 3x faster than from class 3, with class
// 2 bandwidth-starved below both, while keeping benchmark wall-clock
// times in seconds.
package netsim

import (
	"context"
	"sync"
	"time"

	"dpfs/internal/obs"
)

// Params describe one storage device and its network link.
type Params struct {
	// Name labels the class in reports.
	Name string
	// RequestLatency is the fixed overhead charged per request
	// (network round trip + server dispatch).
	RequestLatency time.Duration
	// PerExtent is the overhead charged for each extent (brick
	// fragment) in a request: the positioning/processing cost each
	// separately-addressed piece pays even when shipped in one
	// combined message. This is what makes whole-chunk array bricks
	// cheaper than many combined tile bricks, as in Fig. 11.
	PerExtent time.Duration
	// Bandwidth is the effective data rate of the device in bytes per
	// second (the minimum of its disk and link rates).
	Bandwidth int64
}

// ServiceTime returns the virtual time one request with the given
// extent count moving n bytes occupies the device.
func (p Params) ServiceTime(extents int, n int64) time.Duration {
	d := p.RequestLatency + time.Duration(extents)*p.PerExtent
	if p.Bandwidth > 0 && n > 0 {
		d += time.Duration(float64(n) / float64(p.Bandwidth) * float64(time.Second))
	}
	return d
}

// PerBrickCost returns the unloaded cost of fetching one brick of the
// given size in its own request: the quantity the paper normalizes
// into the DPFS-SERVER "performance" attribute.
func (p Params) PerBrickCost(brickBytes int64) time.Duration {
	return p.ServiceTime(1, brickBytes)
}

// The three storage classes of Section 8, scaled so every figure
// regenerates in seconds while preserving the paper's ratios: a
// 512 KiB brick (the 256x256 float64 tile) costs about 3x more on
// class 3 than on class 1, and class 2 is bandwidth-starved below
// both. Latencies are large enough that the model, not host
// scheduling noise, dominates measured time.
func Class1() Params {
	return Params{Name: "class1", RequestLatency: 800 * time.Microsecond,
		PerExtent: 250 * time.Microsecond, Bandwidth: 100 << 20}
}

func Class2() Params {
	return Params{Name: "class2", RequestLatency: 2 * time.Millisecond,
		PerExtent: 500 * time.Microsecond, Bandwidth: 8 << 20}
}

func Class3() Params {
	return Params{Name: "class3", RequestLatency: 2400 * time.Microsecond,
		PerExtent: 750 * time.Microsecond, Bandwidth: 33 << 20}
}

// ClassByName resolves a preset by its label.
func ClassByName(name string) (Params, bool) {
	switch name {
	case "class1":
		return Class1(), true
	case "class2":
		return Class2(), true
	case "class3":
		return Class3(), true
	}
	return Params{}, false
}

// NormalizedPerf converts per-brick costs into the paper's normalized
// performance numbers: the fastest class gets 1, the others get their
// cost rounded to the nearest integer multiple of the fastest.
func NormalizedPerf(classes []Params, brickBytes int64) []int {
	out := make([]int, len(classes))
	if len(classes) == 0 {
		return out
	}
	fastest := classes[0].PerBrickCost(brickBytes)
	for _, c := range classes[1:] {
		if d := c.PerBrickCost(brickBytes); d < fastest {
			fastest = d
		}
	}
	for i, c := range classes {
		r := float64(c.PerBrickCost(brickBytes)) / float64(fastest)
		n := int(r + 0.5)
		if n < 1 {
			n = 1
		}
		out[i] = n
	}
	return out
}

// Model is the shared service-time shaper of one device. All requests
// against the device contend for it: each request reserves the device
// for its service time, so concurrent requests queue exactly like they
// would at a real disk. A nil *Model charges nothing.
type Model struct {
	mu   sync.Mutex
	p    Params
	free time.Time // the instant the device next becomes idle

	busy time.Duration // accumulated service time (for utilization)
	reqs int64

	wait *obs.Histogram // per-request queued+service time, microseconds
}

// New builds a shaper for the given parameters.
func New(p Params) *Model { return &Model{p: p, wait: obs.NewHistogram()} }

// WaitHistogram returns the model's per-request wait (queue + service)
// histogram in microseconds; servers adopt it into their registry. Nil
// for a nil model.
func (m *Model) WaitHistogram() *obs.Histogram {
	if m == nil {
		return nil
	}
	return m.wait
}

// Params returns the model's parameters.
func (m *Model) Params() Params {
	if m == nil {
		return Params{}
	}
	return m.p
}

// Delay charges one request with the given extent count and byte total
// and blocks until the device has serviced it (or ctx is done). It
// returns the time the request spent queued + in service.
//
// A cancelled request gives its unserviced remainder back to the
// device: the reservation window [now, end) is released so an aborted
// client (timeout, retry against another server) does not leave the
// simulated device busy. Requests already queued behind it keep their
// computed finish times — only future arrivals see the freed time —
// which mirrors a real disk queue draining an abandoned slot.
func (m *Model) Delay(ctx context.Context, extents int, n int64) (time.Duration, error) {
	if m == nil {
		return 0, nil
	}
	cost := m.p.ServiceTime(extents, n)
	m.mu.Lock()
	now := time.Now()
	start := m.free
	if start.Before(now) {
		start = now
	}
	end := start.Add(cost)
	m.free = end
	m.busy += cost
	m.reqs++
	m.mu.Unlock()

	wait := time.Until(end)
	if wait <= 0 {
		d := time.Since(now)
		m.wait.Record(d.Microseconds())
		return d, nil
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-t.C:
		d := time.Since(now)
		m.wait.Record(d.Microseconds())
		return d, nil
	case <-ctx.Done():
		m.mu.Lock()
		if rem := time.Until(end); rem > 0 {
			m.free = m.free.Add(-rem)
			m.busy -= rem
		}
		m.mu.Unlock()
		return time.Since(now), ctx.Err()
	}
}

// Stats returns the accumulated busy time and request count.
func (m *Model) Stats() (busy time.Duration, requests int64) {
	if m == nil {
		return 0, 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.busy, m.reqs
}
