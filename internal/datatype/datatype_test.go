package datatype

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func seq(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i)
	}
	return out
}

func TestBytes(t *testing.T) {
	b := Bytes(8)
	if b.Size() != 8 || b.Extent() != 8 {
		t.Fatalf("size/extent = %d/%d", b.Size(), b.Extent())
	}
	mem := seq(8)
	packed, err := Pack(b, mem)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(packed, mem) {
		t.Fatal("bytes pack should be identity")
	}
	if !Contig(b) {
		t.Error("Bytes should be contiguous")
	}
	if segs := Segments(Bytes(0)); len(segs) != 0 {
		t.Errorf("zero-length type has %d segments", len(segs))
	}
}

func TestContiguous(t *testing.T) {
	c := Contiguous{Count: 3, Elem: Bytes(4)}
	if c.Size() != 12 || c.Extent() != 12 {
		t.Fatalf("size/extent = %d/%d", c.Size(), c.Extent())
	}
	if !Contig(c) {
		t.Error("contiguous of bytes should be contiguous")
	}
	segs := Segments(c)
	if len(segs) != 1 || segs[0] != (Segment{0, 12}) {
		t.Errorf("segments = %v", segs)
	}
}

func TestVector(t *testing.T) {
	// Every other 2-byte block out of a 10-byte buffer: offsets 0-1,
	// 4-5, 8-9.
	v := Vector{Count: 3, BlockLen: 2, Stride: 4, Elem: Bytes(1)}
	if v.Size() != 6 {
		t.Fatalf("size = %d", v.Size())
	}
	if v.Extent() != 10 {
		t.Fatalf("extent = %d", v.Extent())
	}
	if Contig(v) {
		t.Error("strided vector must not be contiguous")
	}
	mem := seq(10)
	packed, err := Pack(v, mem)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0, 1, 4, 5, 8, 9}
	if !bytes.Equal(packed, want) {
		t.Fatalf("packed = %v, want %v", packed, want)
	}

	out := make([]byte, 10)
	if err := Unpack(v, packed, out); err != nil {
		t.Fatal(err)
	}
	wantOut := []byte{0, 1, 0, 0, 4, 5, 0, 0, 8, 9}
	if !bytes.Equal(out, wantOut) {
		t.Fatalf("unpacked = %v, want %v", out, wantOut)
	}

	if (Vector{Count: 0, BlockLen: 2, Stride: 4, Elem: Bytes(1)}).Extent() != 0 {
		t.Error("empty vector extent should be 0")
	}
}

func TestVectorOfVectors(t *testing.T) {
	// A column of a 4x4 byte matrix (stride 4, blocklen 1) wrapped in a
	// contiguous count of 1; then two such columns via Struct.
	col := Vector{Count: 4, BlockLen: 1, Stride: 4, Elem: Bytes(1)}
	twoCols := Struct{Displs: []int64{0, 1}, Types: []Type{col, col}}
	mem := seq(16)
	packed, err := Pack(twoCols, mem)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0, 4, 8, 12, 1, 5, 9, 13}
	if !bytes.Equal(packed, want) {
		t.Fatalf("packed = %v, want %v", packed, want)
	}
	if twoCols.Extent() != 14 {
		t.Errorf("extent = %d, want 14", twoCols.Extent())
	}
}

func TestIndexed(t *testing.T) {
	ix := Indexed{BlockLens: []int64{2, 1, 3}, Displs: []int64{0, 4, 7}, Elem: Bytes(1)}
	if ix.Size() != 6 {
		t.Fatalf("size = %d", ix.Size())
	}
	if ix.Extent() != 10 {
		t.Fatalf("extent = %d", ix.Extent())
	}
	mem := seq(10)
	packed, err := Pack(ix, mem)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0, 1, 4, 7, 8, 9}
	if !bytes.Equal(packed, want) {
		t.Fatalf("packed = %v, want %v", packed, want)
	}
}

func TestSubarray(t *testing.T) {
	// 4x4 matrix of 2-byte elements; select rows 1-2, cols 1-2.
	s := Subarray{ElemSize: 2, Dims: []int64{4, 4}, Start: []int64{1, 1}, Count: []int64{2, 2}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Size() != 8 || s.Extent() != 32 {
		t.Fatalf("size/extent = %d/%d", s.Size(), s.Extent())
	}
	mem := seq(32)
	packed, err := Pack(s, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Element (r,c) starts at (r*4+c)*2.
	want := []byte{10, 11, 12, 13, 18, 19, 20, 21}
	if !bytes.Equal(packed, want) {
		t.Fatalf("packed = %v, want %v", packed, want)
	}

	// Full-array subarray is contiguous.
	full := Subarray{ElemSize: 2, Dims: []int64{4, 4}, Start: []int64{0, 0}, Count: []int64{4, 4}}
	if !Contig(full) {
		t.Error("full subarray should be contiguous")
	}
}

func TestSubarrayValidate(t *testing.T) {
	bad := []Subarray{
		{ElemSize: 0, Dims: []int64{4}, Start: []int64{0}, Count: []int64{1}},
		{ElemSize: 1, Dims: nil, Start: nil, Count: nil},
		{ElemSize: 1, Dims: []int64{4}, Start: []int64{0, 0}, Count: []int64{1}},
		{ElemSize: 1, Dims: []int64{4}, Start: []int64{-1}, Count: []int64{1}},
		{ElemSize: 1, Dims: []int64{4}, Start: []int64{0}, Count: []int64{5}},
		{ElemSize: 1, Dims: []int64{4}, Start: []int64{2}, Count: []int64{3}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestPackErrors(t *testing.T) {
	v := Vector{Count: 2, BlockLen: 1, Stride: 4, Elem: Bytes(1)}
	if err := PackInto(v, seq(10), make([]byte, 1)); err == nil {
		t.Error("short output buffer should fail")
	}
	if err := PackInto(v, seq(2), make([]byte, 10)); err == nil {
		t.Error("short memory buffer should fail")
	}
	if err := Unpack(v, seq(1), make([]byte, 10)); err == nil {
		t.Error("short input should fail")
	}
	if err := Unpack(v, seq(4), make([]byte, 2)); err == nil {
		t.Error("short memory should fail")
	}
}

// Property: pack followed by unpack into a zeroed buffer, then pack
// again, reproduces the first packed buffer (pack∘unpack is identity on
// the packed domain) for random compositions.
func TestQuickPackUnpackIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		typ := randomType(r, 2)
		mem := make([]byte, typ.Extent())
		r.Read(mem)
		p1, err := Pack(typ, mem)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if int64(len(p1)) != typ.Size() {
			return false
		}
		scratch := make([]byte, typ.Extent())
		if err := Unpack(typ, p1, scratch); err != nil {
			return false
		}
		p2, err := Pack(typ, scratch)
		if err != nil {
			return false
		}
		return bytes.Equal(p1, p2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Segments covers exactly Size() bytes, runs are in
// non-overlapping ascending memory order for monotone types, and every
// run is inside the extent.
func TestQuickSegmentsConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		typ := randomType(r, 2)
		segs := Segments(typ)
		var total int64
		pos := int64(-1)
		for _, s := range segs {
			if s.Len <= 0 || s.Off < 0 || s.Off+s.Len > typ.Extent() {
				t.Logf("seed %d: bad segment %+v extent %d", seed, s, typ.Extent())
				return false
			}
			if s.Off <= pos {
				t.Logf("seed %d: segments not ascending", seed)
				return false
			}
			pos = s.Off + s.Len - 1
			total += s.Len
		}
		return total == typ.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// randomType builds random monotone (ascending-displacement) type trees
// up to the given depth.
func randomType(r *rand.Rand, depth int) Type {
	if depth == 0 {
		return Bytes(1 + r.Intn(8))
	}
	switch r.Intn(4) {
	case 0:
		return Contiguous{Count: int64(1 + r.Intn(5)), Elem: randomType(r, depth-1)}
	case 1:
		bl := int64(1 + r.Intn(3))
		return Vector{
			Count:    int64(1 + r.Intn(5)),
			BlockLen: bl,
			Stride:   bl + int64(r.Intn(4)),
			Elem:     randomType(r, depth-1),
		}
	case 2:
		n := 1 + r.Intn(4)
		lens := make([]int64, n)
		displs := make([]int64, n)
		pos := int64(0)
		for i := 0; i < n; i++ {
			displs[i] = pos + int64(r.Intn(3))
			lens[i] = int64(1 + r.Intn(3))
			pos = displs[i] + lens[i]
		}
		return Indexed{BlockLens: lens, Displs: displs, Elem: randomType(r, depth-1)}
	default:
		nd := 1 + r.Intn(3)
		dims := make([]int64, nd)
		start := make([]int64, nd)
		count := make([]int64, nd)
		for d := 0; d < nd; d++ {
			dims[d] = 1 + int64(r.Intn(6))
			start[d] = int64(r.Intn(int(dims[d])))
			count[d] = 1 + int64(r.Intn(int(dims[d]-start[d])))
		}
		return Subarray{ElemSize: int64(1 + r.Intn(4)), Dims: dims, Start: start, Count: count}
	}
}
