// Package datatype implements MPI-IO style derived datatypes, the
// mechanism DPFS adopts to let users express non-contiguous data
// conveniently (Section 6 of the paper, following Thakur et al.'s "A
// case for using MPI's derived datatypes to improve I/O performance").
//
// A Type describes a pattern of bytes inside a user buffer. Packing
// gathers the described bytes into a contiguous buffer (what travels to
// the I/O servers); unpacking scatters a contiguous buffer back out.
package datatype

import (
	"errors"
	"fmt"
)

// Type describes a (possibly non-contiguous) byte layout in memory.
//
// Size is the number of payload bytes the type selects; Extent is the
// span of memory it covers, so that Count consecutive instances of the
// type start Extent bytes apart.
type Type interface {
	Size() int64
	Extent() int64

	// segments calls yield for every contiguous run (offset relative to
	// the instance origin plus base, length in bytes) in memory order.
	// It stops early and returns false when yield returns false.
	segments(base int64, yield func(off, n int64) bool) bool
}

// Segment is one contiguous run of a datatype's layout.
type Segment struct {
	Off int64 // byte offset within the user buffer
	Len int64 // run length in bytes
}

// Segments materializes the type's layout as a list of contiguous runs
// in memory order.
func Segments(t Type) []Segment {
	var out []Segment
	t.segments(0, func(off, n int64) bool {
		if len(out) > 0 && out[len(out)-1].Off+out[len(out)-1].Len == off {
			out[len(out)-1].Len += n
			return true
		}
		out = append(out, Segment{Off: off, Len: n})
		return true
	})
	return out
}

// Pack gathers the bytes the type describes from mem into a fresh
// contiguous buffer of t.Size() bytes.
func Pack(t Type, mem []byte) ([]byte, error) {
	out := make([]byte, t.Size())
	if err := PackInto(t, mem, out); err != nil {
		return nil, err
	}
	return out, nil
}

// PackInto gathers the described bytes into out, which must be at least
// t.Size() long.
func PackInto(t Type, mem, out []byte) error {
	if int64(len(out)) < t.Size() {
		return fmt.Errorf("datatype: pack buffer %d bytes, need %d", len(out), t.Size())
	}
	if t.Extent() > int64(len(mem)) {
		return fmt.Errorf("datatype: memory buffer %d bytes, type extent %d", len(mem), t.Extent())
	}
	pos := int64(0)
	ok := t.segments(0, func(off, n int64) bool {
		copy(out[pos:pos+n], mem[off:off+n])
		pos += n
		return true
	})
	if !ok {
		return errors.New("datatype: pack aborted")
	}
	return nil
}

// Unpack scatters the contiguous buffer in (t.Size() bytes) into mem
// following the type's layout.
func Unpack(t Type, in, mem []byte) error {
	if int64(len(in)) < t.Size() {
		return fmt.Errorf("datatype: unpack source %d bytes, need %d", len(in), t.Size())
	}
	if t.Extent() > int64(len(mem)) {
		return fmt.Errorf("datatype: memory buffer %d bytes, type extent %d", len(mem), t.Extent())
	}
	pos := int64(0)
	ok := t.segments(0, func(off, n int64) bool {
		copy(mem[off:off+n], in[pos:pos+n])
		pos += n
		return true
	})
	if !ok {
		return errors.New("datatype: unpack aborted")
	}
	return nil
}

// Contig returns true when the type is a single contiguous run, in
// which case Pack/Unpack degrade to a copy (or can be skipped).
func Contig(t Type) bool {
	segs := Segments(t)
	return len(segs) == 0 || (len(segs) == 1 && segs[0].Off == 0 && segs[0].Len == t.Size())
}

// --- Base and constructed types -------------------------------------

// Bytes is the elementary contiguous type of n bytes (MPI_BYTE with a
// count folded in).
type Bytes int64

// Size implements Type.
func (b Bytes) Size() int64 { return int64(b) }

// Extent implements Type.
func (b Bytes) Extent() int64 { return int64(b) }

func (b Bytes) segments(base int64, yield func(off, n int64) bool) bool {
	if b == 0 {
		return true
	}
	return yield(base, int64(b))
}

// Contiguous is Count consecutive instances of Elem
// (MPI_Type_contiguous).
type Contiguous struct {
	Count int64
	Elem  Type
}

// Size implements Type.
func (c Contiguous) Size() int64 { return c.Count * c.Elem.Size() }

// Extent implements Type.
func (c Contiguous) Extent() int64 { return c.Count * c.Elem.Extent() }

func (c Contiguous) segments(base int64, yield func(off, n int64) bool) bool {
	ext := c.Elem.Extent()
	for i := int64(0); i < c.Count; i++ {
		if !c.Elem.segments(base+i*ext, yield) {
			return false
		}
	}
	return true
}

// Vector is Count blocks of BlockLen elements, the starts of
// consecutive blocks Stride elements apart (MPI_Type_vector). Stride is
// measured in units of Elem.Extent().
type Vector struct {
	Count    int64
	BlockLen int64
	Stride   int64
	Elem     Type
}

// Size implements Type.
func (v Vector) Size() int64 { return v.Count * v.BlockLen * v.Elem.Size() }

// Extent implements Type.
func (v Vector) Extent() int64 {
	if v.Count == 0 {
		return 0
	}
	ext := v.Elem.Extent()
	return ((v.Count-1)*v.Stride + v.BlockLen) * ext
}

func (v Vector) segments(base int64, yield func(off, n int64) bool) bool {
	ext := v.Elem.Extent()
	blk := Contiguous{Count: v.BlockLen, Elem: v.Elem}
	for i := int64(0); i < v.Count; i++ {
		if !blk.segments(base+i*v.Stride*ext, yield) {
			return false
		}
	}
	return true
}

// Indexed is a sequence of blocks of varying length at varying
// displacements, both measured in units of Elem.Extent()
// (MPI_Type_indexed). Displacements must be non-decreasing in memory
// order for packing to be well defined.
type Indexed struct {
	BlockLens []int64
	Displs    []int64
	Elem      Type
}

// Size implements Type.
func (ix Indexed) Size() int64 {
	var n int64
	for _, b := range ix.BlockLens {
		n += b
	}
	return n * ix.Elem.Size()
}

// Extent implements Type.
func (ix Indexed) Extent() int64 {
	var hi int64
	for i := range ix.BlockLens {
		end := ix.Displs[i] + ix.BlockLens[i]
		if end > hi {
			hi = end
		}
	}
	return hi * ix.Elem.Extent()
}

func (ix Indexed) segments(base int64, yield func(off, n int64) bool) bool {
	ext := ix.Elem.Extent()
	for i := range ix.BlockLens {
		blk := Contiguous{Count: ix.BlockLens[i], Elem: ix.Elem}
		if !blk.segments(base+ix.Displs[i]*ext, yield) {
			return false
		}
	}
	return true
}

// Subarray selects the hyper-rectangle [Start, Start+Count) of a
// row-major N-dimensional array of Dims elements, each ElemSize bytes
// (MPI_Type_create_subarray). Its extent is the whole array.
type Subarray struct {
	ElemSize int64
	Dims     []int64
	Start    []int64
	Count    []int64
}

// Size implements Type.
func (s Subarray) Size() int64 {
	n := s.ElemSize
	for _, c := range s.Count {
		n *= c
	}
	return n
}

// Extent implements Type.
func (s Subarray) Extent() int64 {
	n := s.ElemSize
	for _, d := range s.Dims {
		n *= d
	}
	return n
}

func (s Subarray) segments(base int64, yield func(off, n int64) bool) bool {
	nd := len(s.Dims)
	if nd == 0 {
		return true
	}
	run := s.Count[nd-1] * s.ElemSize
	pos := make([]int64, nd)
	for {
		off := int64(0)
		for d := 0; d < nd; d++ {
			off = off*s.Dims[d] + s.Start[d] + pos[d]
		}
		if !yield(base+off*s.ElemSize, run) {
			return false
		}
		d := nd - 2
		for d >= 0 {
			pos[d]++
			if pos[d] < s.Count[d] {
				break
			}
			pos[d] = 0
			d--
		}
		if d < 0 {
			return true
		}
	}
}

// Validate checks a Subarray's internal consistency.
func (s Subarray) Validate() error {
	if s.ElemSize <= 0 {
		return errors.New("datatype: subarray ElemSize must be positive")
	}
	if len(s.Dims) == 0 || len(s.Start) != len(s.Dims) || len(s.Count) != len(s.Dims) {
		return errors.New("datatype: subarray rank mismatch")
	}
	for d := range s.Dims {
		if s.Dims[d] <= 0 || s.Start[d] < 0 || s.Count[d] <= 0 || s.Start[d]+s.Count[d] > s.Dims[d] {
			return fmt.Errorf("datatype: subarray dim %d out of range", d)
		}
	}
	return nil
}

// Struct is a heterogeneous sequence of fields at explicit byte
// displacements (MPI_Type_create_struct). Displacements must be
// non-decreasing in memory order for packing to be well defined.
type Struct struct {
	Displs []int64 // byte displacement of each field
	Types  []Type
}

// Size implements Type.
func (st Struct) Size() int64 {
	var n int64
	for _, t := range st.Types {
		n += t.Size()
	}
	return n
}

// Extent implements Type.
func (st Struct) Extent() int64 {
	var hi int64
	for i, t := range st.Types {
		end := st.Displs[i] + t.Extent()
		if end > hi {
			hi = end
		}
	}
	return hi
}

func (st Struct) segments(base int64, yield func(off, n int64) bool) bool {
	for i, t := range st.Types {
		if !t.segments(base+st.Displs[i], yield) {
			return false
		}
	}
	return true
}
