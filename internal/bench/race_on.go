//go:build race

package bench

// raceEnabled reports that the race detector is instrumenting this
// build; timing-based shape assertions skip themselves because the
// 5-20x instrumentation slowdown distorts bandwidth ratios.
const raceEnabled = true
