package bench

import (
	"context"
	"testing"
	"time"

	"dpfs/internal/netsim"
)

// These tests assert the *shape* of the paper's evaluation — who wins
// and roughly by how much — at a reduced scale. They are the
// regression guard for the reproduction: if a change to the striping,
// combination or placement code inverts one of the paper's findings,
// a test here fails. Margins are deliberately loose (timing on a busy
// host is noisy) and each assertion retries once before failing.
func testConfig(t *testing.T) Config {
	return Config{N: 256, Dir: t.TempDir(), Reps: 3}
}

func ctxT(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	t.Cleanup(cancel)
	return ctx
}

// retryRatio asserts got() produces a pair (a, b) with a/b >= want,
// allowing one retry to ride out scheduling noise.
func retryRatio(t *testing.T, what string, want float64, got func() (float64, float64, error)) {
	t.Helper()
	var a, b float64
	var err error
	for attempt := 0; attempt < 2; attempt++ {
		a, b, err = got()
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		if b > 0 && a/b >= want {
			return
		}
	}
	t.Errorf("%s: ratio %.2f (%.2f / %.2f), want >= %.2f", what, a/b, a, b, want)
}

// byLabel indexes measurements.
func byLabel(ms []Measurement) map[string]Measurement {
	out := make(map[string]Measurement, len(ms))
	for _, m := range ms {
		out[m.Label] = m
	}
	return out
}

// TestFig11Shape: on one storage class, the paper's file-level ordering
// holds: multidim beats linear by a large factor, the array level
// beats combined multidim, and request combination helps the linear
// and multidim levels but not the array level.
func TestFig11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based shape test")
	}
	if raceEnabled {
		t.Skip("race instrumentation distorts timing ratios")
	}
	cfg := testConfig(t)
	ctx := ctxT(t)

	run := func() map[string]Measurement {
		ms, err := FileLevels(ctx, cfg, "Fig11", 8, 4, netsim.Class1())
		if err != nil {
			t.Fatal(err)
		}
		return byLabel(ms)
	}

	retryRatio(t, "multidim over linear (paper: 10-20x with hints)", 3.0, func() (float64, float64, error) {
		m := run()
		return m["Combined Multi-dim"].MBps, m["Linear"].MBps, nil
	})
	retryRatio(t, "combination helps linear", 1.2, func() (float64, float64, error) {
		m := run()
		return m["Combined Linear"].MBps, m["Linear"].MBps, nil
	})
	retryRatio(t, "combination helps multidim", 1.1, func() (float64, float64, error) {
		m := run()
		return m["Combined Multi-dim"].MBps, m["Multi-dim"].MBps, nil
	})
	retryRatio(t, "array over combined multidim (paper: ~2x over multidim)", 1.1, func() (float64, float64, error) {
		m := run()
		return m["Array"].MBps, m["Combined Multi-dim"].MBps, nil
	})
	// Combination can not further improve the array level (paper): the
	// two bars stay within noise of each other (each side bounded).
	retryRatio(t, "combined array does not collapse", 0.7, func() (float64, float64, error) {
		m := run()
		return m["Combined Array"].MBps, m["Array"].MBps, nil
	})
}

// TestFig11TrafficShape asserts the non-timing side of Fig. 11, which
// is deterministic: request counts and moved bytes per level.
func TestFig11TrafficShape(t *testing.T) {
	cfg := testConfig(t)
	cfg.Reps = 1
	ctx := ctxT(t)
	ms, err := FileLevels(ctx, cfg, "Fig11", 8, 4, netsim.Params{})
	if err != nil {
		t.Fatal(err)
	}
	m := byLabel(ms)

	// Linear touches every brick of the file (np x the useful bytes);
	// multidim and array move exactly the useful bytes.
	if m["Linear"].MovedMB < 7.9*m["Multi-dim"].MovedMB {
		t.Errorf("linear moved %.2f MB, multidim %.2f; want 8x waste",
			m["Linear"].MovedMB, m["Multi-dim"].MovedMB)
	}
	if m["Multi-dim"].MovedMB != m["Multi-dim"].UsefulMB {
		t.Errorf("multidim moved %.2f MB for %.2f useful", m["Multi-dim"].MovedMB, m["Multi-dim"].UsefulMB)
	}
	// Request counts: 8 procs x 64 bricks linear = 512; combination
	// collapses to one per proc per server (<= 32); multidim column
	// access touches 8 bricks per proc = 64; array one chunk per proc.
	if m["Linear"].Requests != 512 {
		t.Errorf("linear requests = %d, want 512", m["Linear"].Requests)
	}
	if m["Combined Linear"].Requests != 32 {
		t.Errorf("combined linear requests = %d, want 32", m["Combined Linear"].Requests)
	}
	if m["Multi-dim"].Requests != 64 {
		t.Errorf("multidim requests = %d, want 64", m["Multi-dim"].Requests)
	}
	if m["Array"].Requests != 8 {
		t.Errorf("array requests = %d, want 8 (one chunk per proc)", m["Array"].Requests)
	}
}

// TestFig13Shape: greedy placement beats round-robin on mixed
// class-1/class-3 storage for reads and writes, combined or not.
func TestFig13Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based shape test")
	}
	if raceEnabled {
		t.Skip("race instrumentation distorts timing ratios")
	}
	cfg := testConfig(t)
	ctx := ctxT(t)

	for _, ac := range AlgoCases() {
		ac := ac
		retryRatio(t, "greedy over round-robin: "+ac.Label, 1.1, func() (float64, float64, error) {
			g, err := RunAlgoCase(ctx, cfg, "greedy", ac, 8, 8)
			if err != nil {
				return 0, 0, err
			}
			r, err := RunAlgoCase(ctx, cfg, "round-robin", ac, 8, 8)
			if err != nil {
				return 0, 0, err
			}
			return g.MBps, r.MBps, nil
		})
	}
}

// TestGreedySplitShape: the deterministic half of Fig. 13 — greedy
// gives the class-1 half 3x the bricks of the class-3 half.
func TestGreedySplitShape(t *testing.T) {
	perf := netsim.NormalizedPerf([]netsim.Params{
		netsim.Class1(), netsim.Class1(), netsim.Class3(), netsim.Class3(),
	}, 512<<10)
	if perf[0] != 1 || perf[2] != 3 {
		t.Fatalf("normalized perf = %v, want [1 1 3 3]", perf)
	}
}

// TestAblationShapes: the ablations' winners stay the right way
// around.
func TestAblationShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based shape test")
	}
	if raceEnabled {
		t.Skip("race instrumentation distorts timing ratios")
	}
	cfg := testConfig(t)
	ctx := ctxT(t)

	retryRatio(t, "stagger avoids convoy", 1.05, func() (float64, float64, error) {
		ms, err := AblationStagger(ctx, cfg, 8, 8)
		if err != nil {
			return 0, 0, err
		}
		m := byLabel(ms)
		return m["Combined+Stagger"].MBps, m["Combined, no stagger"].MBps, nil
	})
	retryRatio(t, "square tile beats row tile under column access", 1.2, func() (float64, float64, error) {
		ms, err := AblationBrickShape(ctx, cfg, 8, 4)
		if err != nil {
			return 0, 0, err
		}
		m := byLabel(ms)
		return m["square tile"].MBps, m["row tile"].MBps, nil
	})
	retryRatio(t, "more servers scale bandwidth", 1.5, func() (float64, float64, error) {
		ms, err := AblationServerCount(ctx, cfg, 8, []int{1, 4})
		if err != nil {
			return 0, 0, err
		}
		return ms[1].MBps, ms[0].MBps, nil
	})
	retryRatio(t, "collective beats independent on interleaved rows", 1.5, func() (float64, float64, error) {
		ms, err := AblationCollective(ctx, cfg, 8, 4)
		if err != nil {
			return 0, 0, err
		}
		m := byLabel(ms)
		return m["Collective (two-phase)"].MBps, m["Independent"].MBps, nil
	})
	retryRatio(t, "parallel dispatch beats the sequential sweep", 1.5, func() (float64, float64, error) {
		ms, err := AblationParallel(ctx, cfg, 4, 4)
		if err != nil {
			return 0, 0, err
		}
		m := byLabel(ms)
		return m["Parallel dispatch"].MBps, m["Sequential dispatch"].MBps, nil
	})
}

// TestFigureDispatch covers the Figure() entry points and unknown
// figure handling.
func TestFigureDispatch(t *testing.T) {
	cfg := testConfig(t)
	cfg.Reps = 1
	cfg.N = 128
	ctx := ctxT(t)
	if _, err := Figure(ctx, cfg, 7); err == nil {
		t.Fatal("figure 7 should be rejected")
	}
	ms, err := Figure(ctx, cfg, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 8 {
		t.Fatalf("fig 13 bars = %d, want 8", len(ms))
	}
	if _, err := Ablation(ctx, cfg, "nosuch"); err == nil {
		t.Fatal("unknown ablation should be rejected")
	}
	if len(AblationNames()) != 10 {
		t.Fatalf("ablations = %v", AblationNames())
	}
	// Measurement renders.
	if s := ms[0].String(); s == "" {
		t.Fatal("empty measurement string")
	}
}
