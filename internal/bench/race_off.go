//go:build !race

package bench

// raceEnabled is false in ordinary builds; see race_on.go.
const raceEnabled = false
