// Package bench regenerates the paper's evaluation (Section 8): the
// file-level comparisons of Figs. 11 and 12 and the striping-algorithm
// comparisons of Figs. 13 and 14, plus the ablations listed in
// DESIGN.md. The same harness backs cmd/dpfs-bench (tables on stdout)
// and the root bench_test.go (go test -bench).
//
// Workload shape, exactly as in the paper: a square 2-d float64 array
// is striped over the I/O nodes; NP compute-node goroutines access it
// in HPF patterns ((*, BLOCK) for the file-level figures, (BLOCK, *)
// for the striping-algorithm figures). Reported bandwidth is aggregate
// useful application bytes divided by wall time, in MB/s. Absolute
// numbers depend on the netsim calibration; the paper's claims are
// about the ratios.
package bench

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"dpfs/internal/cluster"
	"dpfs/internal/core"
	"dpfs/internal/fault"
	"dpfs/internal/netsim"
	"dpfs/internal/obs"
	"dpfs/internal/server"
	"dpfs/internal/stripe"
)

// Config scales the experiments.
type Config struct {
	// N is the array edge (the paper used 32768; the default 512 keeps
	// a figure under a few seconds while preserving every ratio).
	N int64
	// Tile is the multidim tile edge (paper: 256).
	Tile int64
	// Dir is a scratch directory for server roots.
	Dir string
	// Reps repeats each measurement and reports the median (default
	// 3), damping host scheduling noise.
	Reps int
	// Parallel dispatches each access's per-server requests
	// concurrently (core.Options.ParallelDispatch) instead of the
	// paper's sequential sweep.
	Parallel bool
	// Fault, when non-nil, injects the configured fault schedule into
	// every measured engine's server connections (setup/fill traffic
	// stays fault-free). Pair it with a Retry policy that can absorb
	// the schedule, or measurements will error out.
	Fault *fault.Injector
	// Retry tunes the measured engines' per-RPC timeout/retry/breaker
	// behavior; the zero value uses the server package defaults.
	Retry server.RetryPolicy
	// CacheBytes, when > 0, gives every measured engine a client data
	// cache with that byte budget (core.Options.CacheBytes).
	CacheBytes int64
	// MetaTTL, when > 0, gives every measured engine a metadata cache
	// with that TTL (core.Options.MetaTTL).
	MetaTTL time.Duration
	// Readahead is the sequential prefetch depth in bricks
	// (core.Options.Readahead); it needs CacheBytes > 0 to take effect.
	Readahead int
	// WireV2 runs every measured engine on the tagged-frame wire
	// protocol (core.Options.WireV2): multiplexed connections,
	// streamed payloads.
	WireV2 bool
}

// withDispatch applies the configured dispatch mode, cache settings,
// and any fault schedule to a measurement's engine options.
func (c Config) withDispatch(opts core.Options) core.Options {
	opts.ParallelDispatch = c.Parallel
	opts.Retry = c.Retry
	opts.CacheBytes = c.CacheBytes
	opts.MetaTTL = c.MetaTTL
	opts.Readahead = c.Readahead
	opts.WireV2 = c.WireV2
	if c.Fault != nil {
		opts.Dial = c.Fault.DialContext
	}
	return opts
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.N == 0 {
		c.N = 512
	}
	if c.Tile == 0 {
		c.Tile = c.N / 8
	}
	if c.Reps == 0 {
		c.Reps = 3
	}
	return c
}

const elemSize = 8 // float64 array elements, as in Sec. 8

// caseDir hands every cluster launch a fresh scratch directory so
// subfiles from a previous case never alias the next one's.
var caseSeq atomic.Int64

func caseDir(base string) string {
	return filepath.Join(base, fmt.Sprintf("case-%d", caseSeq.Add(1)))
}

// Measurement is one bar of a figure.
type Measurement struct {
	Figure   string
	Class    string // storage class or algorithm variant
	Label    string // e.g. "Combined Multi-dim", "Greedy Read"
	MBps     float64
	Elapsed  time.Duration
	Requests int64
	MovedMB  float64 // bytes transferred (incl. discarded brick parts)
	UsefulMB float64
	// Per-request latency percentiles across all ranks of the phase,
	// from the ranks' shared metric registry.
	Lat50, Lat95, Lat99 time.Duration
	// Conns is the number of TCP connections the measured phase opened
	// across all servers (Σ conns_total deltas). Only the wire
	// ablation fills it; other figures leave it zero.
	Conns int64
}

// String renders one row.
func (m Measurement) String() string {
	return fmt.Sprintf("%-8s %-8s %-22s %8.2f MB/s  %10v  %6d reqs  %8.2f MB moved  p50/p95/p99 %v/%v/%v",
		m.Figure, m.Class, m.Label, m.MBps, m.Elapsed.Round(time.Microsecond), m.Requests, m.MovedMB,
		m.Lat50.Round(time.Microsecond), m.Lat95.Round(time.Microsecond), m.Lat99.Round(time.Microsecond))
}

// LevelCase is one bar group of Figs. 11/12.
type LevelCase struct {
	Label   string
	Level   stripe.Level
	Combine bool
}

// LevelCases lists the six bars of the file-level figures.
func LevelCases() []LevelCase {
	return []LevelCase{
		{"Linear", stripe.LevelLinear, false},
		{"Combined Linear", stripe.LevelLinear, true},
		{"Multi-dim", stripe.LevelMultidim, false},
		{"Combined Multi-dim", stripe.LevelMultidim, true},
		{"Array", stripe.LevelArray, false},
		{"Combined Array", stripe.LevelArray, true},
	}
}

// hintFor builds the creation hint for a level under the (*, BLOCK)
// workload of Figs. 11/12.
func (c Config) hintFor(level stripe.Level, np int) core.Hint {
	switch level {
	case stripe.LevelLinear:
		return core.Hint{Level: level, BrickBytes: c.Tile * c.Tile * elemSize}
	case stripe.LevelMultidim:
		return core.Hint{Level: level, Tile: []int64{c.Tile, c.Tile}}
	default: // array, chunked (*, BLOCK) over np processors
		return core.Hint{Level: level,
			Pattern: []stripe.Dist{stripe.DistStar, stripe.DistBlock},
			Grid:    []int64{1, int64(np)}}
	}
}

// colSection is rank r's (*, BLOCK) slice.
func colSection(n int64, np, rank int) stripe.Section {
	w := n / int64(np)
	return stripe.NewSection([]int64{0, int64(rank) * w}, []int64{n, w})
}

// rowSection is rank r's (BLOCK, *) slice.
func rowSection(n int64, np, rank int) stripe.Section {
	h := n / int64(np)
	return stripe.NewSection([]int64{int64(rank) * h, 0}, []int64{h, n})
}

// measure repeats measureOnce and keeps the median elapsed time.
func measure(ctx context.Context, cfg Config, c *cluster.Cluster, np int, opts core.Options,
	path string, secFor func(rank int) stripe.Section, write bool) (Measurement, error) {
	runs := make([]Measurement, 0, cfg.Reps)
	for i := 0; i < cfg.Reps; i++ {
		m, err := measureOnce(ctx, c, np, opts, path, secFor, write)
		if err != nil {
			return Measurement{}, err
		}
		runs = append(runs, m)
	}
	sortMeasurements(runs)
	return runs[len(runs)/2], nil
}

func sortMeasurements(ms []Measurement) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && ms[j].Elapsed < ms[j-1].Elapsed; j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}

// measureOnce runs np compute goroutines, each performing one section
// access, and reports aggregate useful bandwidth.
func measureOnce(ctx context.Context, c *cluster.Cluster, np int, opts core.Options,
	path string, secFor func(rank int) stripe.Section, write bool) (Measurement, error) {

	// All ranks of this phase share one registry, so the counters below
	// are this run's traffic only: concurrent measurements elsewhere in
	// the process no longer bleed in (unlike the package-wide
	// core.ReadStats aggregate).
	reg := obs.NewRegistry()
	fss := make([]*core.FS, np)
	files := make([]*core.File, np)
	bufs := make([][]byte, np)
	var useful int64
	for p := 0; p < np; p++ {
		fs, err := c.NewFS(p, opts)
		if err != nil {
			return Measurement{}, err
		}
		fs.SetMetrics(reg)
		fss[p] = fs
		f, err := fs.Open(path)
		if err != nil {
			return Measurement{}, err
		}
		files[p] = f
		sec := secFor(p)
		bufs[p] = make([]byte, sec.Bytes(f.Geometry().ElemSize))
		if write {
			for i := range bufs[p] {
				bufs[p][i] = byte(p + i)
			}
		}
		useful += int64(len(bufs[p]))
	}
	defer func() {
		for p := 0; p < np; p++ {
			if files[p] != nil {
				files[p].Close()
			}
			if fss[p] != nil {
				fss[p].Close()
			}
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, np)
	for p := 0; p < np; p++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			var err error
			if write {
				err = files[rank].WriteSection(ctx, secFor(rank), bufs[rank])
			} else {
				err = files[rank].ReadSection(ctx, secFor(rank), bufs[rank])
			}
			if err != nil {
				errs <- err
			}
		}(p)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return Measurement{}, err
	}

	snap := reg.Snapshot()
	lat := snap.Histograms[core.MetricRequestLatency]
	return Measurement{
		Elapsed:  elapsed,
		MBps:     float64(useful) / (1 << 20) / elapsed.Seconds(),
		Requests: snap.Counters[core.MetricRequests],
		MovedMB:  float64(snap.Counters[core.MetricBytesMoved]) / (1 << 20),
		UsefulMB: float64(useful) / (1 << 20),
		Lat50:    time.Duration(lat.P50) * time.Microsecond,
		Lat95:    time.Duration(lat.P95) * time.Microsecond,
		Lat99:    time.Duration(lat.P99) * time.Microsecond,
	}, nil
}

// fill writes the whole array once (setup, not measured) using a
// combined writer.
func fill(ctx context.Context, c *cluster.Cluster, path string, dims []int64) error {
	fs, err := c.NewFS(0, core.Options{Combine: true, Stagger: true})
	if err != nil {
		return err
	}
	defer fs.Close()
	f, err := fs.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	// Row blocks keep per-write buffers modest.
	rows := dims[0]
	step := rows / 8
	if step < 1 {
		step = rows
	}
	for r0 := int64(0); r0 < rows; r0 += step {
		n := step
		if rem := rows - r0; rem < n {
			n = rem
		}
		sec := stripe.NewSection([]int64{r0, 0}, []int64{n, dims[1]})
		buf := make([]byte, sec.Bytes(elemSize))
		for i := range buf {
			buf[i] = byte(i)
		}
		if err := f.WriteSection(ctx, sec, buf); err != nil {
			return err
		}
	}
	return nil
}

// FileLevels regenerates one storage class of Fig. 11 (np=8, io=4) or
// Fig. 12 (np=16, io=8): the six bars Linear / Combined Linear /
// Multi-dim / Combined Multi-dim / Array / Combined Array under a
// (*, BLOCK) read of an N x N array.
func FileLevels(ctx context.Context, cfg Config, figure string, np, io int, class netsim.Params) ([]Measurement, error) {
	cfg = cfg.WithDefaults()
	var out []Measurement
	for _, lc := range LevelCases() {
		m, err := RunLevelCase(ctx, cfg, np, io, class, lc)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", class.Name, lc.Label, err)
		}
		m.Figure = figure
		out = append(out, m)
	}
	return out, nil
}

// RunLevelCase builds a fresh uniform-class cluster and measures one
// bar of a file-level figure.
func RunLevelCase(ctx context.Context, cfg Config, np, io int, class netsim.Params, lc LevelCase) (Measurement, error) {
	cfg = cfg.WithDefaults()
	c, err := cluster.Start(cluster.Config{
		Servers:       cluster.UniformClass(io, class),
		Dir:           caseDir(cfg.Dir),
		RefBrickBytes: cfg.Tile * cfg.Tile * elemSize,
	})
	if err != nil {
		return Measurement{}, err
	}
	m, err := runLevelCase(ctx, cfg, c, lc, np)
	c.Close()
	if err != nil {
		return Measurement{}, err
	}
	m.Class = class.Name
	m.Label = lc.Label
	return m, nil
}

func runLevelCase(ctx context.Context, cfg Config, c *cluster.Cluster, lc LevelCase, np int) (Measurement, error) {
	dims := []int64{cfg.N, cfg.N}
	path := "/bench.dat"
	fs, err := c.NewFS(0, core.Options{Combine: true})
	if err != nil {
		return Measurement{}, err
	}
	f, err := fs.Create(path, elemSize, dims, cfg.hintFor(lc.Level, np))
	if err != nil {
		fs.Close()
		return Measurement{}, err
	}
	f.Close()
	fs.Close()
	if err := fill(ctx, c, path, dims); err != nil {
		return Measurement{}, err
	}
	opts := cfg.withDispatch(core.Options{Combine: lc.Combine, Stagger: lc.Combine})
	return measure(ctx, cfg, c, np, opts, path,
		func(rank int) stripe.Section { return colSection(cfg.N, np, rank) }, false)
}

// AlgoCase is one bar group of Figs. 13/14.
type AlgoCase struct {
	Label   string
	Write   bool
	Combine bool
}

// AlgoCases lists the four bars of the striping-algorithm figures.
func AlgoCases() []AlgoCase {
	return []AlgoCase{
		{"Write", true, false},
		{"Combined Write", true, true},
		{"Read", false, false},
		{"Combined Read", false, true},
	}
}

// StripingAlgorithms regenerates Fig. 13 (np=8, io=8) or Fig. 14
// (np=16, io=16): Write / Combined Write / Read / Combined Read
// bandwidth for round-robin vs greedy placement on storage that is
// half class 1 and half class 3.
func StripingAlgorithms(ctx context.Context, cfg Config, figure string, np, io int) ([]Measurement, error) {
	cfg = cfg.WithDefaults()
	var out []Measurement
	for _, algo := range []string{"round-robin", "greedy"} {
		for _, ac := range AlgoCases() {
			m, err := RunAlgoCase(ctx, cfg, algo, ac, np, io)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", algo, ac.Label, err)
			}
			m.Figure = figure
			out = append(out, m)
		}
	}
	return out, nil
}

// RunAlgoCase builds a fresh half-class-1 half-class-3 cluster and
// measures one bar of a striping-algorithm figure.
func RunAlgoCase(ctx context.Context, cfg Config, algo string, ac AlgoCase, np, io int) (Measurement, error) {
	cfg = cfg.WithDefaults()
	c, err := cluster.Start(cluster.Config{
		Servers:       cluster.Mixed(io),
		Dir:           caseDir(cfg.Dir),
		RefBrickBytes: cfg.Tile * cfg.Tile * elemSize,
	})
	if err != nil {
		return Measurement{}, err
	}
	m, err := runAlgoCase(ctx, cfg, c, algo, ac, np, io)
	c.Close()
	if err != nil {
		return Measurement{}, err
	}
	m.Class = algo
	m.Label = ac.Label
	return m, nil
}

func runAlgoCase(ctx context.Context, cfg Config, c *cluster.Cluster, algo string, ac AlgoCase, np, io int) (Measurement, error) {
	dims := []int64{cfg.N, cfg.N}
	path := "/bench.dat"

	var placement stripe.Placement = stripe.RoundRobin{}
	if algo == "greedy" {
		classes := cluster.Mixed(io)
		params := make([]netsim.Params, io)
		for i := range classes {
			params[i] = classes[i].Class
		}
		placement = stripe.Greedy{Perf: netsim.NormalizedPerf(params, cfg.Tile*cfg.Tile*elemSize)}
	}

	fs, err := c.NewFS(0, core.Options{Combine: true})
	if err != nil {
		return Measurement{}, err
	}
	hint := core.Hint{
		Level:     stripe.LevelMultidim,
		Tile:      []int64{cfg.Tile, cfg.Tile},
		Placement: placement,
		Servers:   c.ServerNames(), // launch order: first half class 1, second half class 3
	}
	f, err := fs.Create(path, elemSize, dims, hint)
	if err != nil {
		fs.Close()
		return Measurement{}, err
	}
	f.Close()
	fs.Close()

	if !ac.Write {
		if err := fill(ctx, c, path, dims); err != nil {
			return Measurement{}, err
		}
	}
	opts := cfg.withDispatch(core.Options{Combine: ac.Combine, Stagger: ac.Combine})
	return measure(ctx, cfg, c, np, opts, path,
		func(rank int) stripe.Section { return rowSection(cfg.N, np, rank) }, ac.Write)
}

// Figure dispatches a figure by number.
func Figure(ctx context.Context, cfg Config, fig int) ([]Measurement, error) {
	switch fig {
	case 11:
		var out []Measurement
		for _, class := range []netsim.Params{netsim.Class1(), netsim.Class2(), netsim.Class3()} {
			ms, err := FileLevels(ctx, cfg, "Fig11", 8, 4, class)
			if err != nil {
				return nil, err
			}
			out = append(out, ms...)
		}
		return out, nil
	case 12:
		var out []Measurement
		for _, class := range []netsim.Params{netsim.Class1(), netsim.Class2(), netsim.Class3()} {
			ms, err := FileLevels(ctx, cfg, "Fig12", 16, 8, class)
			if err != nil {
				return nil, err
			}
			out = append(out, ms...)
		}
		return out, nil
	case 13:
		return StripingAlgorithms(ctx, cfg, "Fig13", 8, 8)
	case 14:
		return StripingAlgorithms(ctx, cfg, "Fig14", 16, 16)
	}
	return nil, fmt.Errorf("bench: no figure %d in the paper's evaluation", fig)
}
