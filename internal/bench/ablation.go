package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"dpfs/internal/cluster"
	"dpfs/internal/collective"
	"dpfs/internal/core"
	"dpfs/internal/netsim"
	"dpfs/internal/obs"
	"dpfs/internal/server"
	"dpfs/internal/stripe"
)

// This file holds the ablations DESIGN.md calls out: experiments the
// paper motivates qualitatively but does not plot, isolating individual
// design decisions.

// AblationStagger isolates the scheduling half of request combination
// (Sec. 4.2): combined linear reads with and without the staggered
// server start. A linear file spreads every client's bricks over all
// servers, so without staggering all ranks begin their sweep at server
// 0 and convoy.
func AblationStagger(ctx context.Context, cfg Config, np, io int) ([]Measurement, error) {
	cfg = cfg.WithDefaults()
	var out []Measurement
	for _, stagger := range []bool{false, true} {
		c, err := cluster.Start(cluster.Config{
			Servers:       cluster.UniformClass(io, netsim.Class1()),
			Dir:           caseDir(cfg.Dir),
			RefBrickBytes: cfg.Tile * cfg.Tile * elemSize,
		})
		if err != nil {
			return nil, err
		}
		m, err := runStaggerCase(ctx, cfg, c, np, stagger)
		c.Close()
		if err != nil {
			return nil, err
		}
		m.Figure = "AblStagger"
		m.Class = "class1"
		if stagger {
			m.Label = "Combined+Stagger"
		} else {
			m.Label = "Combined, no stagger"
		}
		out = append(out, m)
	}
	return out, nil
}

func runStaggerCase(ctx context.Context, cfg Config, c *cluster.Cluster, np int, stagger bool) (Measurement, error) {
	dims := []int64{cfg.N, cfg.N}
	path := "/abl-stagger.dat"
	fs, err := c.NewFS(0, core.Options{Combine: true})
	if err != nil {
		return Measurement{}, err
	}
	f, err := fs.Create(path, elemSize, dims,
		core.Hint{Level: stripe.LevelLinear, BrickBytes: cfg.Tile * cfg.Tile * elemSize})
	if err != nil {
		fs.Close()
		return Measurement{}, err
	}
	f.Close()
	fs.Close()
	if err := fill(ctx, c, path, dims); err != nil {
		return Measurement{}, err
	}
	opts := cfg.withDispatch(core.Options{Combine: true, Stagger: stagger})
	return measure(ctx, cfg, c, np, opts, path,
		func(rank int) stripe.Section { return colSection(cfg.N, np, rank) }, false)
}

// AblationBrickShape compares multidim tile aspect ratios (square,
// row-shaped, column-shaped of equal byte size) under a (*, BLOCK)
// column read: the paper's argument for why the tile shape should
// match the access pattern.
func AblationBrickShape(ctx context.Context, cfg Config, np, io int) ([]Measurement, error) {
	cfg = cfg.WithDefaults()
	t := cfg.Tile
	shapes := []struct {
		label string
		tile  []int64
	}{
		{"square tile", []int64{t, t}},
		{"row tile", []int64{t / 4, t * 4}},
		{"column tile", []int64{t * 4, t / 4}},
	}
	var out []Measurement
	for _, sh := range shapes {
		if sh.tile[0] < 1 || sh.tile[1] < 1 || sh.tile[0] > cfg.N || sh.tile[1] > cfg.N {
			continue
		}
		c, err := cluster.Start(cluster.Config{
			Servers:       cluster.UniformClass(io, netsim.Class1()),
			Dir:           caseDir(cfg.Dir),
			RefBrickBytes: cfg.Tile * cfg.Tile * elemSize,
		})
		if err != nil {
			return nil, err
		}
		m, err := runShapeCase(ctx, cfg, c, np, sh.tile)
		c.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sh.label, err)
		}
		m.Figure = "AblShape"
		m.Class = "class1"
		m.Label = sh.label
		out = append(out, m)
	}
	return out, nil
}

func runShapeCase(ctx context.Context, cfg Config, c *cluster.Cluster, np int, tile []int64) (Measurement, error) {
	dims := []int64{cfg.N, cfg.N}
	path := "/abl-shape.dat"
	fs, err := c.NewFS(0, core.Options{Combine: true})
	if err != nil {
		return Measurement{}, err
	}
	f, err := fs.Create(path, elemSize, dims, core.Hint{Level: stripe.LevelMultidim, Tile: tile})
	if err != nil {
		fs.Close()
		return Measurement{}, err
	}
	f.Close()
	fs.Close()
	if err := fill(ctx, c, path, dims); err != nil {
		return Measurement{}, err
	}
	opts := cfg.withDispatch(core.Options{Combine: true, Stagger: true})
	return measure(ctx, cfg, c, np, opts, path,
		func(rank int) stripe.Section { return colSection(cfg.N, np, rank) }, false)
}

// AblationServerCount sweeps the I/O node count at a fixed compute
// count, showing bandwidth scaling with storage parallelism (the
// paper's motivation for striping at all).
func AblationServerCount(ctx context.Context, cfg Config, np int, ios []int) ([]Measurement, error) {
	cfg = cfg.WithDefaults()
	if len(ios) == 0 {
		ios = []int{1, 2, 4, 8}
	}
	var out []Measurement
	for _, io := range ios {
		m, err := RunLevelCase(ctx, cfg, np, io, netsim.Class1(),
			LevelCase{Label: "Combined Multi-dim", Level: stripe.LevelMultidim, Combine: true})
		if err != nil {
			return nil, fmt.Errorf("io=%d: %w", io, err)
		}
		m.Figure = "AblServers"
		m.Label = fmt.Sprintf("%d I/O nodes", io)
		out = append(out, m)
	}
	return out, nil
}

// AblationExactReads contrasts the paper's whole-brick access model
// with exact-extent (data-sieving-off) reads under a linear column
// access, quantifying how much of the linear level's penalty is
// discarded data versus request count.
func AblationExactReads(ctx context.Context, cfg Config, np, io int) ([]Measurement, error) {
	cfg = cfg.WithDefaults()
	var out []Measurement
	for _, exact := range []bool{false, true} {
		c, err := cluster.Start(cluster.Config{
			Servers:       cluster.UniformClass(io, netsim.Class1()),
			Dir:           caseDir(cfg.Dir),
			RefBrickBytes: cfg.Tile * cfg.Tile * elemSize,
		})
		if err != nil {
			return nil, err
		}
		m, err := runExactCase(ctx, cfg, c, np, exact)
		c.Close()
		if err != nil {
			return nil, err
		}
		m.Figure = "AblExact"
		m.Class = "class1"
		if exact {
			m.Label = "Linear, exact extents"
		} else {
			m.Label = "Linear, whole bricks"
		}
		out = append(out, m)
	}
	return out, nil
}

func runExactCase(ctx context.Context, cfg Config, c *cluster.Cluster, np int, exact bool) (Measurement, error) {
	dims := []int64{cfg.N, cfg.N}
	path := "/abl-exact.dat"
	fs, err := c.NewFS(0, core.Options{Combine: true})
	if err != nil {
		return Measurement{}, err
	}
	f, err := fs.Create(path, elemSize, dims,
		core.Hint{Level: stripe.LevelLinear, BrickBytes: cfg.Tile * cfg.Tile * elemSize})
	if err != nil {
		fs.Close()
		return Measurement{}, err
	}
	f.Close()
	fs.Close()
	if err := fill(ctx, c, path, dims); err != nil {
		return Measurement{}, err
	}
	opts := cfg.withDispatch(core.Options{Combine: true, Stagger: true, ExactReads: exact})
	return measure(ctx, cfg, c, np, opts, path,
		func(rank int) stripe.Section { return colSection(cfg.N, np, rank) }, false)
}

// AblationCollective contrasts independent I/O with two-phase
// collective I/O (internal/collective, the paper's MPI-IO future-work
// layer) under an interleaved (CYCLIC, *) row write, the pattern where
// per-rank requests fragment worst.
func AblationCollective(ctx context.Context, cfg Config, np, io int) ([]Measurement, error) {
	cfg = cfg.WithDefaults()
	var out []Measurement
	for _, coll := range []bool{false, true} {
		c, err := cluster.Start(cluster.Config{
			Servers:       cluster.UniformClass(io, netsim.Class1()),
			Dir:           caseDir(cfg.Dir),
			RefBrickBytes: cfg.Tile * cfg.Tile * elemSize,
		})
		if err != nil {
			return nil, err
		}
		m, err := runCollectiveCase(ctx, cfg, c, np, coll)
		c.Close()
		if err != nil {
			return nil, err
		}
		m.Figure = "AblColl"
		m.Class = "class1"
		if coll {
			m.Label = "Collective (two-phase)"
		} else {
			m.Label = "Independent"
		}
		out = append(out, m)
	}
	return out, nil
}

func runCollectiveCase(ctx context.Context, cfg Config, c *cluster.Cluster, np int, coll bool) (Measurement, error) {
	dims := []int64{cfg.N, cfg.N}
	path := "/abl-coll.dat"
	admin, err := c.NewFS(0, core.Options{Combine: true})
	if err != nil {
		return Measurement{}, err
	}
	f, err := admin.Create(path, elemSize, dims, core.Hint{Level: stripe.LevelMultidim, Tile: []int64{cfg.Tile, cfg.Tile}})
	if err != nil {
		admin.Close()
		return Measurement{}, err
	}
	f.Close()
	admin.Close()

	runs := make([]Measurement, 0, cfg.Reps)
	for rep := 0; rep < cfg.Reps; rep++ {
		m, err := measureCollective(ctx, c, cfg, np, path, coll)
		if err != nil {
			return Measurement{}, err
		}
		runs = append(runs, m)
	}
	sortMeasurements(runs)
	return runs[len(runs)/2], nil
}

// measureCollective has every rank write rowsPerRank interleaved
// single rows ((CYCLIC, *)), independently or through a collective
// group.
func measureCollective(ctx context.Context, c *cluster.Cluster, cfg Config, np int, path string, coll bool) (Measurement, error) {
	files := make([]*core.File, np)
	fss := make([]*core.FS, np)
	for r := 0; r < np; r++ {
		fs, err := c.NewFS(r, cfg.withDispatch(core.Options{Combine: true, Stagger: true}))
		if err != nil {
			return Measurement{}, err
		}
		fss[r] = fs
		f, err := fs.Open(path)
		if err != nil {
			return Measurement{}, err
		}
		files[r] = f
	}
	defer func() {
		for r := 0; r < np; r++ {
			if files[r] != nil {
				files[r].Close()
			}
			if fss[r] != nil {
				fss[r].Close()
			}
		}
	}()

	rounds := int(cfg.Tile) // one tile-row of interleaved rows
	rowBytes := cfg.N * elemSize
	data := make([]byte, rowBytes)
	g, err := collective.NewGroup(np)
	if err != nil {
		return Measurement{}, err
	}

	core.ResetStats()
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, np)
	for r := 0; r < np; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			buf := append([]byte(nil), data...)
			for round := 0; round < rounds; round++ {
				row := int64(round*np + rank)
				sec := stripe.NewSection([]int64{row, 0}, []int64{1, cfg.N})
				var err error
				if coll {
					err = g.WriteAll(ctx, rank, files[rank], sec, buf)
				} else {
					err = files[rank].WriteSection(ctx, sec, buf)
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(r)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return Measurement{}, err
	}
	useful := int64(np*rounds) * rowBytes
	st := core.ReadStats()
	return Measurement{
		Elapsed:  elapsed,
		MBps:     float64(useful) / (1 << 20) / elapsed.Seconds(),
		Requests: st.Requests,
		MovedMB:  float64(st.BytesTransferred) / (1 << 20),
		UsefulMB: float64(useful) / (1 << 20),
	}, nil
}

// AblationParallel isolates the client's dispatch loop: a combined
// multidim row read where every rank's combined requests cover all
// servers, shipped sequentially (the paper's model) versus in
// parallel. Staggering is off in both variants — its scheduling effect
// has its own ablation, and disabling it here makes the sequential
// convoy deterministic: all np ranks sweep the servers in the same
// order, so the sweep drains in (np+S-1) service times, while parallel
// dispatch keeps every device queue full and drains in np. At np=S=4
// that is a 7:4 (1.75x) aggregate bandwidth gap on the class-1 shaped
// cluster.
func AblationParallel(ctx context.Context, cfg Config, np, io int) ([]Measurement, error) {
	cfg = cfg.WithDefaults()
	var out []Measurement
	for _, par := range []bool{false, true} {
		c, err := cluster.Start(cluster.Config{
			Servers:       cluster.UniformClass(io, netsim.Class1()),
			Dir:           caseDir(cfg.Dir),
			RefBrickBytes: cfg.Tile * cfg.Tile * elemSize,
		})
		if err != nil {
			return nil, err
		}
		runCfg := cfg
		runCfg.Parallel = par
		m, err := runParallelCase(ctx, runCfg, c, np)
		c.Close()
		if err != nil {
			return nil, err
		}
		m.Figure = "AblParallel"
		m.Class = "class1"
		if par {
			m.Label = "Parallel dispatch"
		} else {
			m.Label = "Sequential dispatch"
		}
		out = append(out, m)
	}
	return out, nil
}

func runParallelCase(ctx context.Context, cfg Config, c *cluster.Cluster, np int) (Measurement, error) {
	dims := []int64{cfg.N, cfg.N}
	path := "/abl-parallel.dat"
	fs, err := c.NewFS(0, core.Options{Combine: true})
	if err != nil {
		return Measurement{}, err
	}
	f, err := fs.Create(path, elemSize, dims,
		core.Hint{Level: stripe.LevelMultidim, Tile: []int64{cfg.Tile, cfg.Tile}})
	if err != nil {
		fs.Close()
		return Measurement{}, err
	}
	f.Close()
	fs.Close()
	if err := fill(ctx, c, path, dims); err != nil {
		return Measurement{}, err
	}
	opts := cfg.withDispatch(core.Options{Combine: true})
	return measure(ctx, cfg, c, np, opts, path,
		func(rank int) stripe.Section { return rowSection(cfg.N, np, rank) }, false)
}

// AblationCache isolates the client-side cache (internal/cache): a
// re-read workload (every rank reads its row slice twice; the second,
// warm pass is timed) and an open-heavy workload (repeated Opens of
// the same path; MBps reports opens per second, not bandwidth). Cache
// off is the baseline engine; cache on enables the data cache,
// metadata cache, and readahead together.
func AblationCache(ctx context.Context, cfg Config, np, io int) ([]Measurement, error) {
	cfg = cfg.WithDefaults()
	var out []Measurement
	for _, cached := range []bool{false, true} {
		c, err := cluster.Start(cluster.Config{
			Servers:       cluster.UniformClass(io, netsim.Class1()),
			Dir:           caseDir(cfg.Dir),
			RefBrickBytes: cfg.Tile * cfg.Tile * elemSize,
		})
		if err != nil {
			return nil, err
		}
		m, err := runCacheReRead(ctx, cfg, c, np, cached)
		if err == nil {
			m.Figure = "AblCache"
			m.Class = "class1"
			if cached {
				m.Label = "Re-read, cache on"
			} else {
				m.Label = "Re-read, cache off"
			}
			out = append(out, m)
			m, err = runCacheOpens(ctx, cfg, c, cached)
		}
		c.Close()
		if err != nil {
			return nil, err
		}
		m.Figure = "AblCache"
		m.Class = "class1"
		if cached {
			m.Label = "Open-heavy, cache on"
		} else {
			m.Label = "Open-heavy, cache off"
		}
		out = append(out, m)
	}
	return out, nil
}

// cacheOpts are the engine options of the cache-on ablation variants:
// generous data budget, a TTL comfortably longer than a measurement,
// and a modest readahead depth.
func (c Config) cacheOpts(opts core.Options) core.Options {
	opts = c.withDispatch(opts)
	if opts.CacheBytes == 0 {
		opts.CacheBytes = 256 << 20
	}
	if opts.MetaTTL == 0 {
		opts.MetaTTL = time.Minute
	}
	if opts.Readahead == 0 {
		opts.Readahead = 2
	}
	return opts
}

func runCacheReRead(ctx context.Context, cfg Config, c *cluster.Cluster, np int, cached bool) (Measurement, error) {
	dims := []int64{cfg.N, cfg.N}
	path := "/abl-cache.dat"
	admin, err := c.NewFS(0, core.Options{Combine: true})
	if err != nil {
		return Measurement{}, err
	}
	f, err := admin.Create(path, elemSize, dims,
		core.Hint{Level: stripe.LevelMultidim, Tile: []int64{cfg.Tile, cfg.Tile}})
	if err != nil {
		admin.Close()
		return Measurement{}, err
	}
	f.Close()
	admin.Close()
	if err := fill(ctx, c, path, dims); err != nil {
		return Measurement{}, err
	}

	opts := cfg.withDispatch(core.Options{Combine: true, Stagger: true})
	if cached {
		opts = cfg.cacheOpts(core.Options{Combine: true, Stagger: true})
	}

	// Unlike measure(), the engines persist across the warm and timed
	// passes: the cache lives in the engine, and the point is the warm
	// hit. Reps share the engines too — every timed pass after the first
	// is equally warm, and the median damps scheduling noise.
	runs := make([]Measurement, 0, cfg.Reps)
	err = func() error {
		fss := make([]*core.FS, np)
		files := make([]*core.File, np)
		bufs := make([][]byte, np)
		var useful int64
		defer func() {
			for p := 0; p < np; p++ {
				if files[p] != nil {
					files[p].Close()
				}
				if fss[p] != nil {
					fss[p].Close()
				}
			}
		}()
		for p := 0; p < np; p++ {
			fs, err := c.NewFS(p, opts)
			if err != nil {
				return err
			}
			fss[p] = fs
			f, err := fs.Open(path)
			if err != nil {
				return err
			}
			files[p] = f
			sec := rowSection(cfg.N, np, p)
			bufs[p] = make([]byte, sec.Bytes(elemSize))
			useful += int64(len(bufs[p]))
		}
		pass := func() (time.Duration, error) {
			start := time.Now()
			var wg sync.WaitGroup
			errs := make(chan error, np)
			for p := 0; p < np; p++ {
				wg.Add(1)
				go func(rank int) {
					defer wg.Done()
					if err := files[rank].ReadSection(ctx, rowSection(cfg.N, np, rank), bufs[rank]); err != nil {
						errs <- err
					}
				}(p)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				return 0, err
			}
			return time.Since(start), nil
		}
		if _, err := pass(); err != nil { // warm (fills caches when on)
			return err
		}
		for rep := 0; rep < cfg.Reps; rep++ {
			elapsed, err := pass()
			if err != nil {
				return err
			}
			runs = append(runs, Measurement{
				Elapsed:  elapsed,
				MBps:     float64(useful) / (1 << 20) / elapsed.Seconds(),
				UsefulMB: float64(useful) / (1 << 20),
			})
		}
		return nil
	}()
	if err != nil {
		return Measurement{}, err
	}
	sortMeasurements(runs)
	return runs[len(runs)/2], nil
}

// runCacheOpens times repeated Opens of one path through a single
// engine. The returned Measurement abuses MBps to carry opens per
// second (UsefulMB stays zero: no data moves).
func runCacheOpens(ctx context.Context, cfg Config, c *cluster.Cluster, cached bool) (Measurement, error) {
	_ = ctx
	path := "/abl-cache.dat" // created by runCacheReRead on the same cluster
	opts := cfg.withDispatch(core.Options{Combine: true})
	if cached {
		opts = cfg.cacheOpts(core.Options{Combine: true})
	}
	fs, err := c.NewFS(0, opts)
	if err != nil {
		return Measurement{}, err
	}
	defer fs.Close()
	const opens = 200
	f, err := fs.Open(path) // warm (fills the metadata cache when on)
	if err != nil {
		return Measurement{}, err
	}
	f.Close()
	runs := make([]Measurement, 0, cfg.Reps)
	for rep := 0; rep < cfg.Reps; rep++ {
		start := time.Now()
		for i := 0; i < opens; i++ {
			f, err := fs.Open(path)
			if err != nil {
				return Measurement{}, err
			}
			f.Close()
		}
		elapsed := time.Since(start)
		runs = append(runs, Measurement{
			Elapsed: elapsed,
			MBps:    float64(opens) / elapsed.Seconds(), // opens/s
		})
	}
	sortMeasurements(runs)
	return runs[len(runs)/2], nil
}

// AblationReplica isolates brick replication: R=2 against the R=1
// baseline on the same cluster. Three costs are measured. Write
// amplification: every R=2 write fans out to both replicas, so moved
// bytes double and write bandwidth drops. Healthy-read overhead: none
// by construction (reads go to the preferred replica only), which the
// R=2 read row demonstrates. Failover-read cost: with one server dead,
// every read whose preferred replica lived there pays a failed attempt
// (or an open-breaker short-circuit after the first few) before the
// surviving copy serves it.
func AblationReplica(ctx context.Context, cfg Config, np, io int) ([]Measurement, error) {
	cfg = cfg.WithDefaults()
	var out []Measurement
	for _, rep := range []int{1, 2} {
		c, err := cluster.Start(cluster.Config{
			Servers:       cluster.UniformClass(io, netsim.Class1()),
			Dir:           caseDir(cfg.Dir),
			RefBrickBytes: cfg.Tile * cfg.Tile * elemSize,
		})
		if err != nil {
			return nil, err
		}
		ms, err := runReplicaCase(ctx, cfg, c, np, rep)
		c.Close()
		if err != nil {
			return nil, err
		}
		out = append(out, ms...)
	}
	return out, nil
}

func runReplicaCase(ctx context.Context, cfg Config, c *cluster.Cluster, np, rep int) ([]Measurement, error) {
	dims := []int64{cfg.N, cfg.N}
	path := "/abl-replica.dat"
	fs, err := c.NewFS(0, core.Options{Combine: true})
	if err != nil {
		return nil, err
	}
	f, err := fs.Create(path, elemSize, dims,
		core.Hint{Level: stripe.LevelMultidim, Tile: []int64{cfg.Tile, cfg.Tile}, Replicas: rep})
	if err != nil {
		fs.Close()
		return nil, err
	}
	f.Close()
	fs.Close()

	opts := cfg.withDispatch(core.Options{Combine: true})
	secs := func(rank int) stripe.Section { return rowSection(cfg.N, np, rank) }
	tag := func(m Measurement, label string) Measurement {
		m.Figure, m.Class, m.Label = "AblReplica", "class1", label
		return m
	}
	var out []Measurement

	w, err := measure(ctx, cfg, c, np, opts, path, secs, true)
	if err != nil {
		return nil, err
	}
	out = append(out, tag(w, fmt.Sprintf("R=%d write", rep)))

	r, err := measure(ctx, cfg, c, np, opts, path, secs, false)
	if err != nil {
		return nil, err
	}
	out = append(out, tag(r, fmt.Sprintf("R=%d read", rep)))

	if rep > 1 {
		// Kill one server; reads whose preferred replica lived there
		// now fail over to the surviving copy.
		if err := c.IOServers[len(c.IOServers)-1].Close(); err != nil {
			return nil, err
		}
		fo, err := measure(ctx, cfg, c, np, opts, path, secs, false)
		if err != nil {
			return nil, err
		}
		out = append(out, tag(fo, fmt.Sprintf("R=%d read, 1 server dead", rep)))
	}
	return out, nil
}

// AblationWire compares the two wire protocols under client fan-in:
// ONE shared engine carries np concurrent readers, so every request
// competes for the same transport — the v1 per-exchange connection
// pool against the v2 tagged-frame mux. Besides bandwidth and tail
// latency, each bar reports Conns, the TCP connections the measured
// phase opened across all servers (Σ conns_total deltas): the pool
// scales conns with concurrency, the mux holds a handful per server
// and multiplexes tags over them.
func AblationWire(ctx context.Context, cfg Config, np, io int) ([]Measurement, error) {
	cfg = cfg.WithDefaults()
	var out []Measurement
	for _, v2 := range []bool{false, true} {
		// Shaped servers (class1) give each request real service time,
		// so the 64 readers' exchanges overlap — the conn-held contrast
		// between pool and mux needs in-flight requests, which native
		// in-process servers answer too fast to accumulate.
		c, err := cluster.Start(cluster.Config{
			Servers:       cluster.UniformClass(io, netsim.Class1()),
			Dir:           caseDir(cfg.Dir),
			RefBrickBytes: cfg.Tile * cfg.Tile * elemSize,
			WireV2:        v2,
		})
		if err != nil {
			return nil, err
		}
		runCfg := cfg
		runCfg.WireV2 = v2
		runCfg.Parallel = true
		m, err := runWireCase(ctx, runCfg, c, np)
		c.Close()
		if err != nil {
			return nil, err
		}
		m.Figure = "AblWire"
		m.Class = "class1"
		if v2 {
			m.Label = "v2 mux"
		} else {
			m.Label = "v1 pool"
		}
		out = append(out, m)
	}
	return out, nil
}

func runWireCase(ctx context.Context, cfg Config, c *cluster.Cluster, np int) (Measurement, error) {
	dims := []int64{cfg.N, cfg.N}
	path := "/abl-wire.dat"
	fs0, err := c.NewFS(0, core.Options{Combine: true})
	if err != nil {
		return Measurement{}, err
	}
	f, err := fs0.Create(path, elemSize, dims,
		core.Hint{Level: stripe.LevelMultidim, Tile: []int64{cfg.Tile, cfg.Tile}})
	if err != nil {
		fs0.Close()
		return Measurement{}, err
	}
	f.Close()
	fs0.Close()
	if err := fill(ctx, c, path, dims); err != nil {
		return Measurement{}, err
	}

	connsTotal := func() int64 {
		var n int64
		for _, srv := range c.IOServers {
			n += srv.Metrics().Counter(server.MetricConnsTotal).Value()
		}
		return n
	}

	opts := cfg.withDispatch(core.Options{Combine: true})
	runs := make([]Measurement, 0, cfg.Reps)
	for rep := 0; rep < cfg.Reps; rep++ {
		// One engine for all np readers: the fan-in rides one client
		// per server, which is exactly what the two transports handle
		// differently.
		reg := obs.NewRegistry()
		fs, err := c.NewFS(0, opts)
		if err != nil {
			return Measurement{}, err
		}
		fs.SetMetrics(reg)
		files := make([]*core.File, np)
		bufs := make([][]byte, np)
		var useful int64
		for p := 0; p < np; p++ {
			ff, err := fs.Open(path)
			if err != nil {
				fs.Close()
				return Measurement{}, err
			}
			files[p] = ff
			sec := rowSection(cfg.N, np, p)
			bufs[p] = make([]byte, sec.Bytes(ff.Geometry().ElemSize))
			useful += int64(len(bufs[p]))
		}

		base := connsTotal()
		start := time.Now()
		var wg sync.WaitGroup
		errs := make(chan error, np)
		for p := 0; p < np; p++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				if err := files[rank].ReadSection(ctx, rowSection(cfg.N, np, rank), bufs[rank]); err != nil {
					errs <- err
				}
			}(p)
		}
		wg.Wait()
		elapsed := time.Since(start)
		conns := connsTotal() - base
		for p := 0; p < np; p++ {
			files[p].Close()
		}
		fs.Close()
		close(errs)
		for err := range errs {
			return Measurement{}, err
		}

		snap := reg.Snapshot()
		lat := snap.Histograms[core.MetricRequestLatency]
		runs = append(runs, Measurement{
			Elapsed:  elapsed,
			MBps:     float64(useful) / (1 << 20) / elapsed.Seconds(),
			Requests: snap.Counters[core.MetricRequests],
			MovedMB:  float64(snap.Counters[core.MetricBytesMoved]) / (1 << 20),
			UsefulMB: float64(useful) / (1 << 20),
			Lat50:    time.Duration(lat.P50) * time.Microsecond,
			Lat95:    time.Duration(lat.P95) * time.Microsecond,
			Lat99:    time.Duration(lat.P99) * time.Microsecond,
			Conns:    conns,
		})
	}
	sortMeasurements(runs)
	return runs[len(runs)/2], nil
}

// AblationMeta isolates the two metadata scale levers: WAL group
// commit (one fsync per batch of concurrent committers instead of one
// per transaction) and path-hash catalog sharding (independent commit
// pipelines). The workload is open-heavy — np clients concurrently
// create small files, and each create costs two durable catalog
// transactions (generation allocation plus the create itself) and
// negligible data I/O. Every variant runs with Sync on and a modeled
// per-fsync device cost (cluster.Config.MetaSyncDelay), so the
// contrast is deterministic across host filesystems: group commit
// amortizes that cost over whole batches, and a second shard doubles
// the number of fsync pipelines. The shard rows keep group commit off
// so routing itself carries the scaling. A final row replicates the
// shard three ways with majority acknowledgement, pricing the
// durability upgrade of DESIGN.md §13 on the same workload. MBps
// abuses the field to carry creates per second, as runCacheOpens does
// for opens.
func AblationMeta(ctx context.Context, cfg Config, np, io int) ([]Measurement, error) {
	cfg = cfg.WithDefaults()
	cases := []struct {
		label    string
		shards   int
		group    bool
		replicas int
	}{
		{"1 shard fsync/txn", 1, false, 1},
		{"1 shard group-commit", 1, true, 1},
		{"2 shards fsync/txn", 2, false, 1},
		{"2 shards group-commit", 2, true, 1},
		// The replication tax: every create additionally waits for a
		// majority of the R=3 group to hold it durably (DESIGN.md §13).
		{"1 shard R=3 majority-ack", 1, true, 3},
	}
	var out []Measurement
	for _, cs := range cases {
		c, err := cluster.Start(cluster.Config{
			Servers:         cluster.Uniform(io),
			Dir:             caseDir(cfg.Dir),
			DurableMeta:     true,
			MetaSync:        true,
			MetaSyncDelay:   4 * time.Millisecond,
			MetaShards:      cs.shards,
			MetaGroupCommit: cs.group,
			MetaReplicas:    cs.replicas,
		})
		if err != nil {
			return nil, err
		}
		m, err := runMetaCreates(ctx, cfg, c, np)
		c.Close()
		if err != nil {
			return nil, err
		}
		m.Figure = "AblMeta"
		m.Label = cs.label
		out = append(out, m)
	}
	return out, nil
}

// runMetaCreates times np concurrent clients each creating small
// files (DPFS-Open for writing). Created files are removed untimed
// after each pass so the catalog stays small — per-create cost would
// otherwise grow with the accumulated table scans of the capacity
// check and drown the commit pipeline the ablation isolates. The
// returned Measurement abuses MBps to carry creates per second.
func runMetaCreates(ctx context.Context, cfg Config, c *cluster.Cluster, np int) (Measurement, error) {
	const creates = 6 // per client per pass; each costs two durable commits
	engines := make([]*core.FS, np)
	for p := range engines {
		fs, err := c.NewFS(p, core.Options{Combine: true})
		if err != nil {
			return Measurement{}, err
		}
		engines[p] = fs
	}
	defer func() {
		for _, fs := range engines {
			fs.Close()
		}
	}()
	hint := core.Hint{Level: stripe.LevelMultidim, Tile: []int64{8, 8}}
	forAll := func(op func(rank, i int) error) error {
		var wg sync.WaitGroup
		errs := make(chan error, np)
		for p := 0; p < np; p++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				for i := 0; i < creates; i++ {
					if err := op(rank, i); err != nil {
						errs <- err
						return
					}
				}
			}(p)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			return err
		}
		return nil
	}
	path := func(rank, i int) string { return fmt.Sprintf("/abl-meta-p%d-f%d.dat", rank, i) }
	mkFiles := func() error {
		return forAll(func(rank, i int) error {
			f, err := engines[rank].Create(path(rank, i), elemSize, []int64{8, 8}, hint)
			if err != nil {
				return err
			}
			return f.Close()
		})
	}
	rmFiles := func() error {
		return forAll(func(rank, i int) error { return engines[rank].Remove(ctx, path(rank, i)) })
	}
	if err := mkFiles(); err != nil { // warm: server dials, conn setup
		return Measurement{}, err
	}
	if err := rmFiles(); err != nil {
		return Measurement{}, err
	}
	runs := make([]Measurement, 0, cfg.Reps)
	for rep := 0; rep < cfg.Reps; rep++ {
		start := time.Now()
		if err := mkFiles(); err != nil {
			return Measurement{}, err
		}
		elapsed := time.Since(start)
		if err := rmFiles(); err != nil {
			return Measurement{}, err
		}
		runs = append(runs, Measurement{
			Elapsed: elapsed,
			MBps:    float64(np*creates) / elapsed.Seconds(), // creates/s
		})
	}
	sortMeasurements(runs)
	return runs[len(runs)/2], nil
}

// Ablation dispatches an ablation by name.
func Ablation(ctx context.Context, cfg Config, name string) ([]Measurement, error) {
	switch name {
	case "stagger":
		return AblationStagger(ctx, cfg, 8, 8)
	case "shape":
		return AblationBrickShape(ctx, cfg, 8, 4)
	case "servers":
		return AblationServerCount(ctx, cfg, 8, nil)
	case "exact":
		return AblationExactReads(ctx, cfg, 8, 4)
	case "collective":
		return AblationCollective(ctx, cfg, 8, 4)
	case "parallel":
		return AblationParallel(ctx, cfg, 4, 4)
	case "cache":
		return AblationCache(ctx, cfg, 4, 4)
	case "replica":
		return AblationReplica(ctx, cfg, 4, 4)
	case "wire":
		return AblationWire(ctx, cfg, 64, 4)
	case "meta":
		return AblationMeta(ctx, cfg, 16, 2)
	}
	return nil, fmt.Errorf("bench: unknown ablation %q (stagger, shape, servers, exact, collective, parallel, cache, replica, wire, meta)", name)
}

// AblationNames lists the available ablations.
func AblationNames() []string {
	return []string{"stagger", "shape", "servers", "exact", "collective", "parallel", "cache", "replica", "wire", "meta"}
}
