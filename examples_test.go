package dpfs_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestExamplesRun smoke-tests every example program end to end: each
// must exit zero and print its success line. They are real programs
// spinning up real clusters, so this is also an integration pass over
// the public API.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs example binaries")
	}
	cases := []struct {
		dir  string
		want string
	}{
		{"quickstart", "quickstart done"},
		{"checkpoint", "restore verified"},
		{"columnread", "linear striping fetches every brick"},
		{"heterogeneous", "bandwidth rises"},
		{"collectiveio", "identical file contents"},
	}
	bin := t.TempDir()
	for _, c := range cases {
		c := c
		t.Run(c.dir, func(t *testing.T) {
			t.Parallel()
			out := filepath.Join(bin, c.dir)
			build := exec.Command("go", "build", "-o", out, "./examples/"+c.dir)
			build.Env = os.Environ()
			if msg, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build: %v\n%s", err, msg)
			}
			msg, err := exec.Command(out).CombinedOutput()
			if err != nil {
				t.Fatalf("run: %v\n%s", err, msg)
			}
			if !strings.Contains(string(msg), c.want) {
				t.Fatalf("output missing %q:\n%s", c.want, msg)
			}
		})
	}
}
