// Package dpfs is a Go implementation of DPFS, the Distributed Parallel
// File System of Shen and Choudhary (ICPP 2001). DPFS aggregates unused
// storage on distributed machines into one parallel file system:
// files are striped into bricks across TCP I/O servers, meta data lives
// in a relational database reached over the network, and the client
// library offers MPI-IO-style access with user hints.
//
// The three file levels of the paper are supported:
//
//   - Linear: the file is a byte stream; bricks are contiguous byte
//     runs. Most general, but column-style accesses touch every brick.
//   - Multidimensional: the file is an N-d array; bricks are N-d tiles,
//     so row and column accesses touch equally few bricks.
//   - Array: the file is pre-chunked by an HPF distribution
//     ((BLOCK,*), (*,BLOCK), (BLOCK,BLOCK), ...); each chunk is one
//     brick, ideal for checkpoint-style whole-chunk access.
//
// Placement is round-robin or the paper's greedy algorithm, which gives
// faster servers proportionally more bricks. Request combination ships
// all bricks bound for one server in a single message and staggers each
// client's server sweep to avoid convoying.
//
// A complete deployment needs a metadata server (cmd/dpfs-meta), any
// number of I/O servers (cmd/dpfs-server), and clients created with
// Connect. Tests and single-process experiments can instead use
// internal/cluster through the example programs.
package dpfs

import (
	"context"
	"errors"
	"io"
	"strings"

	"dpfs/internal/core"
	"dpfs/internal/meta"
	"dpfs/internal/metadb/mdbnet"
	"dpfs/internal/repair"
	"dpfs/internal/stripe"
)

// Re-exported striping vocabulary. See internal/stripe for details.
type (
	// Level selects a DPFS file level (striping method).
	Level = stripe.Level
	// Dist is a per-dimension HPF distribution for array-level files.
	Dist = stripe.Dist
	// Section is a hyper-rectangular region of an array file.
	Section = stripe.Section
	// Geometry describes a file's brick layout.
	Geometry = stripe.Geometry
	// Placement assigns bricks to servers (RoundRobin or Greedy).
	Placement = stripe.Placement
	// RoundRobin places brick i on server i mod S.
	RoundRobin = stripe.RoundRobin
	// Greedy is the load-balancing placement of Fig. 8.
	Greedy = stripe.Greedy
)

// File levels.
const (
	// Linear treats the file as a stream of bytes (Fig. 4).
	Linear = stripe.LevelLinear
	// Multidim stripes the file into N-dimensional tiles (Fig. 6).
	Multidim = stripe.LevelMultidim
	// Array stripes the file into whole HPF chunks (Fig. 7).
	Array = stripe.LevelArray
)

// HPF distribution specifiers.
const (
	// Star ("*") leaves a dimension undistributed.
	Star = stripe.DistStar
	// Block ("BLOCK") divides a dimension into contiguous blocks.
	Block = stripe.DistBlock
)

// Client-engine types. See internal/core for field documentation.
type (
	// Options tune the client engine (request combination, staggered
	// scheduling, exact reads).
	Options = core.Options
	// Hint is the DPFS-API hint structure conveyed at file creation.
	Hint = core.Hint
	// File is an open DPFS file handle.
	File = core.File
	// Stats counts network requests and bytes moved by the engine.
	Stats = core.Stats
	// FileInfo is a file's catalog record.
	FileInfo = meta.FileInfo
	// ServerInfo is an I/O server's catalog registration.
	ServerInfo = meta.ServerInfo
	// HealthInfo is a server's row in the catalog health table.
	HealthInfo = meta.HealthInfo
	// RepairReport summarizes an online repair run.
	RepairReport = repair.Report
	// FileRepairInfo is one file's outcome in a repair run.
	FileRepairInfo = repair.FileRepair
)

// AccessPattern describes expected file access for Advise.
type AccessPattern = core.AccessPattern

// Advise turns an access-pattern description into a creation hint,
// encoding the paper's Section 3 guidance: array level for whole-chunk
// HPF access, multidimensional level with access-shaped tiles for
// subarray access, linear otherwise.
func Advise(elemSize int64, dims []int64, ap AccessPattern) Hint {
	return core.Advise(elemSize, dims, ap)
}

// NewSection builds a section from start/count per dimension.
func NewSection(start, count []int64) Section { return stripe.NewSection(start, count) }

// FullSection covers an entire array.
func FullSection(dims []int64) Section { return stripe.FullSection(dims) }

// ReadStats returns engine-wide traffic counters (request counts,
// transferred and useful bytes).
func ReadStats() Stats { return core.ReadStats() }

// ResetStats zeroes the traffic counters.
func ResetStats() { core.ResetStats() }

// Client is a DPFS mount: one compute process's connection to the
// metadata database (one or more catalog shards, each possibly a
// replica group) and, lazily, to the I/O servers.
type Client struct {
	fs   *core.FS
	mdbs []interface{ Close() error }
}

// Connect dials the metadata server at metaAddr and returns a client
// for the given compute rank. Call Close when done.
func Connect(metaAddr string, rank int, opts Options) (*Client, error) {
	return ConnectShards([]string{metaAddr}, rank, opts)
}

// ParseMetaAddrs parses a -meta-addrs flag value into per-shard
// replica address lists for ConnectGroups. Semicolons separate
// shards; commas separate a shard's replicas:
//
//	"h1:9000"                      one shard, unreplicated
//	"h1:9000,h2:9000"              two shards (legacy comma form)
//	"h1a:9000,h1b:9000;h2a:9000"   shard 0 with two replicas, shard 1 with one
//	"h1a:9000,h1b:9000;"           one shard with two replicas
//
// Without any semicolon the commas keep their historical meaning of
// separating shards, so existing multi-shard invocations parse
// unchanged; a single replicated shard therefore needs a trailing
// semicolon. Empty elements are skipped.
func ParseMetaAddrs(spec string) [][]string {
	var groups [][]string
	if !strings.Contains(spec, ";") {
		for _, a := range strings.Split(spec, ",") {
			if a = strings.TrimSpace(a); a != "" {
				groups = append(groups, []string{a})
			}
		}
		return groups
	}
	for _, g := range strings.Split(spec, ";") {
		var reps []string
		for _, a := range strings.Split(g, ",") {
			if a = strings.TrimSpace(a); a != "" {
				reps = append(reps, a)
			}
		}
		if len(reps) > 0 {
			groups = append(groups, reps)
		}
	}
	return groups
}

// ConnectShards dials one catalog shard per address (in shard-index
// order — every client must list the same addresses in the same
// order) and returns a client whose catalog operations are path-hash
// routed across them. One address behaves exactly like Connect.
func ConnectShards(metaAddrs []string, rank int, opts Options) (*Client, error) {
	groups := make([][]string, len(metaAddrs))
	for i, addr := range metaAddrs {
		groups[i] = []string{addr}
	}
	return ConnectGroups(groups, rank, opts)
}

// ConnectGroups is ConnectShards for replicated catalogs: element i is
// shard i's full replica address list (every client must list the
// same shards, in the same order — replica order within a shard does
// not matter). Shards with one address get a plain connection; shards
// with several get a failover connection that follows the replica
// group's primary across elections (see internal/metarepl). Use
// ParseMetaAddrs to build the address lists from a flag string.
func ConnectGroups(groups [][]string, rank int, opts Options) (*Client, error) {
	if len(groups) == 0 {
		return nil, errors.New("dpfs: ConnectGroups needs at least one metadata shard")
	}
	c := &Client{}
	shards := make([]meta.Router, 0, len(groups))
	for _, group := range groups {
		var (
			x   meta.Execer
			err error
		)
		switch len(group) {
		case 0:
			err = errors.New("dpfs: empty replica address list")
		case 1:
			x, err = mdbnet.Dial(group[0])
		default:
			x, err = mdbnet.DialGroup(group, nil)
		}
		if err != nil {
			c.closeMeta()
			return nil, err
		}
		c.mdbs = append(c.mdbs, x.(interface{ Close() error }))
		shards = append(shards, meta.NewCatalog(x))
	}
	var cat meta.Router
	if len(shards) == 1 {
		cat = shards[0]
	} else {
		cat = meta.NewShardRouter(shards...)
	}
	if err := cat.Init(); err != nil {
		c.closeMeta()
		return nil, err
	}
	c.fs = core.NewFS(cat, rank, opts)
	return c, nil
}

// closeMeta drops the catalog connections.
func (c *Client) closeMeta() error {
	var first error
	for _, mdb := range c.mdbs {
		if err := mdb.Close(); err != nil && first == nil {
			first = err
		}
	}
	c.mdbs = nil
	return first
}

// Wrap builds a Client around an existing engine (used by in-process
// clusters and tests).
func Wrap(fs *core.FS) *Client { return &Client{fs: fs} }

// Close drops all server connections.
func (c *Client) Close() error {
	err := c.fs.Close()
	if cerr := c.closeMeta(); err == nil {
		err = cerr
	}
	return err
}

// Engine exposes the underlying client engine.
func (c *Client) Engine() *core.FS { return c.fs }

// Stats returns this client's own traffic counters, isolated from
// other clients in the process (unlike the package-level ReadStats
// aggregate).
func (c *Client) Stats() Stats { return c.fs.Stats() }

// Create makes and opens a new DPFS file holding an array of the given
// element size and dimensions, striped according to the hint
// (DPFS-Open for writing, Section 6).
func (c *Client) Create(path string, elemSize int64, dims []int64, hint Hint) (*File, error) {
	return c.fs.Create(path, elemSize, dims, hint)
}

// Open opens an existing DPFS file (DPFS-Open for reading).
func (c *Client) Open(path string) (*File, error) { return c.fs.Open(path) }

// Remove deletes a file: catalog rows and all server subfiles.
func (c *Client) Remove(ctx context.Context, path string) error { return c.fs.Remove(ctx, path) }

// Rename moves a file to a new path (catalog records and server
// subfiles).
func (c *Client) Rename(ctx context.Context, oldPath, newPath string) error {
	return c.fs.Rename(ctx, oldPath, newPath)
}

// Chmod sets a file's permission bits in the catalog.
func (c *Client) Chmod(path string, perm int) error {
	if err := c.fs.Catalog().SetPerm(path, perm); err != nil {
		return err
	}
	c.fs.InvalidateMeta(path)
	return nil
}

// Chown sets a file's owner in the catalog.
func (c *Client) Chown(path, owner string) error {
	if err := c.fs.Catalog().SetOwner(path, owner); err != nil {
		return err
	}
	c.fs.InvalidateMeta(path)
	return nil
}

// Usage reports per-server file and brick counts from the catalog.
func (c *Client) Usage() ([]meta.ServerUsage, error) { return c.fs.Catalog().Usage() }

// FilesOnServer lists the files holding bricks on one server.
func (c *Client) FilesOnServer(server string) ([]meta.FileOnServer, error) {
	return c.fs.Catalog().FilesOnServer(server)
}

// Stat returns a file's catalog record, served from the client's
// metadata cache when one is configured (Options.MetaTTL).
func (c *Client) Stat(path string) (FileInfo, error) { return c.fs.Stat(path) }

// Mkdir creates a DPFS directory.
func (c *Client) Mkdir(path string) error { return c.fs.Catalog().Mkdir(path) }

// Rmdir removes an empty DPFS directory.
func (c *Client) Rmdir(path string) error { return c.fs.Catalog().Rmdir(path) }

// ReadDir lists a directory.
func (c *Client) ReadDir(path string) (dirs, files []string, err error) {
	return c.fs.Catalog().ReadDir(path)
}

// IsDir reports whether path is an existing directory.
func (c *Client) IsDir(path string) (bool, error) { return c.fs.Catalog().IsDir(path) }

// Servers lists registered I/O servers.
func (c *Client) Servers() ([]ServerInfo, error) { return c.fs.Catalog().Servers() }

// RegisterServer adds or updates an I/O server registration.
func (c *Client) RegisterServer(si ServerInfo) error { return c.fs.Catalog().RegisterServer(si) }

// ServerHealth returns the catalog's per-server health rows
// (alive/suspect/dead, fed by client failure reports and probes).
func (c *Client) ServerHealth() ([]HealthInfo, error) { return c.fs.Catalog().ServerHealth() }

// Repair probes the registered I/O servers, records their health in
// the catalog, and re-replicates under-replicated bricks of every
// file onto healthy servers, rewriting each repaired file's replica
// set under a fresh generation so copies on dead servers can never be
// resurrected. See internal/repair for the protocol.
func (c *Client) Repair(ctx context.Context) (*RepairReport, error) {
	opts := c.fs.Options()
	r := repair.New(c.fs.Catalog(), repair.Options{
		Dial:    opts.Dial,
		Retry:   opts.Retry,
		Metrics: c.fs.Metrics(),
		WireV2:  opts.WireV2,
	})
	defer r.Close()
	return r.Run(ctx)
}

// Import copies size bytes from r into a new linear DPFS file
// (sequential file → DPFS, Section 7).
func (c *Client) Import(ctx context.Context, r io.Reader, path string, size int64, hint Hint) error {
	return c.fs.Import(ctx, r, path, size, hint)
}

// Export streams a DPFS file's contents to w as a flat byte sequence
// (DPFS → sequential file, Section 7).
func (c *Client) Export(ctx context.Context, w io.Writer, path string) error {
	return c.fs.Export(ctx, w, path)
}
