#!/bin/sh
# bench_replica.sh — replication regression gate.
#
# Runs the replica ablation (R=1 baseline vs R=2: write amplification,
# healthy reads, and failover reads with one server dead; see
# bench.AblationReplica) and records the table in BENCH_replica.json
# at the repo root, then asserts the two invariants replication is
# built on: R=2 writes move ~2x the bytes of R=1 writes (fan-out to
# both replicas), and the one-server-dead read still completes with
# nonzero bandwidth (failover works under load). Run it after touching
# the replicated write path, read failover, or repair.
set -eu
cd "$(dirname "$0")/.."

echo "== bench replica: writing BENCH_replica.json =="
go run ./cmd/dpfs-bench -ablation replica -json > BENCH_replica.json
cat BENCH_replica.json

echo "== bench replica: asserting write amplification and failover =="
python3 - <<'EOF'
import json

rows = json.load(open("BENCH_replica.json"))
moved = {r["variant"]: r["moved_mb"] for r in rows}
mbps = {r["variant"]: r["mbps"] for r in rows}

amp = moved["R=2 write"] / moved["R=1 write"]
print(f"write amplification: R=1 {moved['R=1 write']:.2f} MB, "
      f"R=2 {moved['R=2 write']:.2f} MB -> {amp:.2f}x")
print(f"read cost: R=2 healthy {mbps['R=2 read']:.2f} MB/s, "
      f"1 server dead {mbps['R=2 read, 1 server dead']:.2f} MB/s")
if not 1.8 <= amp <= 2.2:
    raise SystemExit(f"R=2 write amplification {amp:.2f}x outside [1.8, 2.2]")
if mbps["R=2 read, 1 server dead"] <= 0:
    raise SystemExit("failover read reported zero bandwidth")
EOF
