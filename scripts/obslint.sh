#!/bin/sh
# Metric-name lint: cross-check every Metric* constant under internal/
# against the frozen manifest scripts/metric_names.txt (snake_case,
# counters end _total, histograms carry unit suffixes) and validate a
# sample /metrics rendering in Prometheus text format. Run from the
# repo root; scripts/check.sh runs it as part of the full gate.
set -e
cd "$(dirname "$0")/.."
go run ./scripts/obslint
