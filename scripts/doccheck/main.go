// Command doccheck is the repo's documentation lint, run by `make
// docs` and scripts/check.sh. It enforces two things with only the
// standard library:
//
//  1. Godoc coverage: every package under ./ and ./internal/... must
//     have a package comment, and every exported top-level identifier
//     (funcs, types, consts, vars, methods on exported types) must
//     have a doc comment.
//  2. Markdown link integrity: relative links in the repo's top-level
//     markdown files must point at files that exist.
//
// Any violation is printed as file:line and the process exits 1.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var problems []string
	problems = append(problems, checkGoDocs(root)...)
	problems = append(problems, checkMarkdownLinks(root)...)
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("doccheck: ok")
}

// checkGoDocs walks every non-test Go file and reports missing package
// and exported-symbol documentation.
func checkGoDocs(root string) []string {
	var problems []string
	fset := token.NewFileSet()
	seenPkgDoc := map[string]bool{} // dir -> some file had a package comment

	var goFiles []string
	_ = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			goFiles = append(goFiles, path)
		}
		return nil
	})

	dirs := map[string][]*ast.File{}
	for _, path := range goFiles {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: parse: %v", path, err))
			continue
		}
		dir := filepath.Dir(path)
		dirs[dir] = append(dirs[dir], f)
		if f.Doc != nil {
			seenPkgDoc[dir] = true
		}
		problems = append(problems, checkFileDocs(fset, path, f)...)
	}
	for dir, files := range dirs {
		if !seenPkgDoc[dir] {
			problems = append(problems,
				fmt.Sprintf("%s: package %s has no package comment", dir, files[0].Name.Name))
		}
	}
	return problems
}

// checkFileDocs reports exported top-level declarations of one file
// that lack a doc comment.
func checkFileDocs(fset *token.FileSet, path string, f *ast.File) []string {
	if f.Name.Name == "main" {
		// Commands document themselves at the package level; their
		// internals are not godoc surface.
		return nil
	}
	var problems []string
	pos := func(n ast.Node) string {
		p := fset.Position(n.Pos())
		return fmt.Sprintf("%s:%d", path, p.Line)
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if d.Recv != nil && !exportedRecv(d.Recv) {
				continue // method on an unexported type
			}
			problems = append(problems, fmt.Sprintf("%s: exported %s is undocumented", pos(d), d.Name.Name))
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
						problems = append(problems, fmt.Sprintf("%s: exported type %s is undocumented", pos(s), s.Name.Name))
					}
				case *ast.ValueSpec:
					// A doc comment on the grouped decl covers the
					// group (idiomatic for const/var blocks).
					if d.Doc != nil || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							problems = append(problems, fmt.Sprintf("%s: exported %s is undocumented", pos(s), n.Name))
						}
					}
				}
			}
		}
	}
	return problems
}

// exportedRecv reports whether a method receiver names an exported
// type.
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

// mdLink matches inline markdown links; bare URLs and reference-style
// links are out of scope.
var mdLink = regexp.MustCompile(`\]\(([^)#]+)(#[^)]*)?\)`)

// checkMarkdownLinks verifies that relative links in the top-level
// markdown files resolve to existing files.
func checkMarkdownLinks(root string) []string {
	var problems []string
	entries, err := os.ReadDir(root)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", root, err)}
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".md") {
			continue
		}
		path := filepath.Join(root, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", path, err))
			continue
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := strings.TrimSpace(m[1])
				if target == "" || strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
					continue
				}
				resolved := filepath.Join(root, filepath.FromSlash(target))
				if _, err := os.Stat(resolved); err != nil {
					problems = append(problems, fmt.Sprintf("%s:%d: broken link %q", path, i+1, target))
				}
			}
		}
	}
	return problems
}
