// Command doccheck is the repo's documentation lint, run by `make
// docs` and scripts/check.sh. It enforces two things with only the
// standard library:
//
//  1. Godoc coverage: every package under ./ and ./internal/... must
//     have a package comment, and every exported top-level identifier
//     (funcs, types, consts, vars, methods on exported types) must
//     have a doc comment.
//  2. Markdown link integrity: relative links in the repo's top-level
//     markdown files must point at files that exist.
//  3. Flag-table parity: every flag a command under cmd/ registers
//     must have a row in that command's README flag table, and every
//     row must name a registered flag — stale docs and undocumented
//     flags both fail.
//
// Any violation is printed as file:line and the process exits 1.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var problems []string
	problems = append(problems, checkGoDocs(root)...)
	problems = append(problems, checkMarkdownLinks(root)...)
	problems = append(problems, checkFlagTables(root)...)
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("doccheck: ok")
}

// checkGoDocs walks every non-test Go file and reports missing package
// and exported-symbol documentation.
func checkGoDocs(root string) []string {
	var problems []string
	fset := token.NewFileSet()
	seenPkgDoc := map[string]bool{} // dir -> some file had a package comment

	var goFiles []string
	_ = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			goFiles = append(goFiles, path)
		}
		return nil
	})

	dirs := map[string][]*ast.File{}
	for _, path := range goFiles {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: parse: %v", path, err))
			continue
		}
		dir := filepath.Dir(path)
		dirs[dir] = append(dirs[dir], f)
		if f.Doc != nil {
			seenPkgDoc[dir] = true
		}
		problems = append(problems, checkFileDocs(fset, path, f)...)
	}
	for dir, files := range dirs {
		if !seenPkgDoc[dir] {
			problems = append(problems,
				fmt.Sprintf("%s: package %s has no package comment", dir, files[0].Name.Name))
		}
	}
	return problems
}

// checkFileDocs reports exported top-level declarations of one file
// that lack a doc comment.
func checkFileDocs(fset *token.FileSet, path string, f *ast.File) []string {
	if f.Name.Name == "main" {
		// Commands document themselves at the package level; their
		// internals are not godoc surface.
		return nil
	}
	var problems []string
	pos := func(n ast.Node) string {
		p := fset.Position(n.Pos())
		return fmt.Sprintf("%s:%d", path, p.Line)
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if d.Recv != nil && !exportedRecv(d.Recv) {
				continue // method on an unexported type
			}
			problems = append(problems, fmt.Sprintf("%s: exported %s is undocumented", pos(d), d.Name.Name))
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
						problems = append(problems, fmt.Sprintf("%s: exported type %s is undocumented", pos(s), s.Name.Name))
					}
				case *ast.ValueSpec:
					// A doc comment on the grouped decl covers the
					// group (idiomatic for const/var blocks).
					if d.Doc != nil || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							problems = append(problems, fmt.Sprintf("%s: exported %s is undocumented", pos(s), n.Name))
						}
					}
				}
			}
		}
	}
	return problems
}

// exportedRecv reports whether a method receiver names an exported
// type.
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

// flagTableIntro matches the line introducing a command's flag table
// in README.md, e.g. "`dpfs-meta` flags:". The table rows follow.
var flagTableIntro = regexp.MustCompile("^`([a-z0-9-]+)` flags:$")

// flagTableRow extracts the flag name from a README table row like
// "| `-meta ADDR` | 127.0.0.1:7700 | metadata database address |".
var flagTableRow = regexp.MustCompile("^\\| `-([a-zA-Z0-9-]+)")

// checkFlagTables cross-checks flag registrations in cmd/*/main.go
// against the per-command flag tables in README.md, in both
// directions: a registered flag missing from the table is an
// undocumented knob; a table row naming no registered flag is stale
// documentation.
func checkFlagTables(root string) []string {
	var problems []string
	readme := filepath.Join(root, "README.md")
	data, err := os.ReadFile(readme)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", readme, err)}
	}

	// README side: command -> flag name -> line number of its row.
	documented := map[string]map[string]int{}
	cmd := ""
	for i, line := range strings.Split(string(data), "\n") {
		if m := flagTableIntro.FindStringSubmatch(line); m != nil {
			cmd = m[1]
			documented[cmd] = map[string]int{}
			continue
		}
		if cmd == "" {
			continue
		}
		if m := flagTableRow.FindStringSubmatch(line); m != nil {
			documented[cmd][m[1]] = i + 1
		} else if strings.TrimSpace(line) != "" && !strings.HasPrefix(line, "|") {
			cmd = "" // table ended
		}
	}

	// Source side: every cmd/<name> package's flag registrations.
	cmdDir := filepath.Join(root, "cmd")
	entries, err := os.ReadDir(cmdDir)
	if err != nil {
		return append(problems, fmt.Sprintf("%s: %v", cmdDir, err))
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		registered := registeredFlags(filepath.Join(cmdDir, name), &problems)
		table := documented[name]
		if table == nil {
			if len(registered) > 0 {
				problems = append(problems,
					fmt.Sprintf("%s: no \"`%s` flags:\" table in README.md", readme, name))
			}
			continue
		}
		for flagName, pos := range registered {
			if _, ok := table[flagName]; !ok {
				problems = append(problems,
					fmt.Sprintf("%s: flag -%s of %s is missing from its README flag table", pos, flagName, name))
			}
		}
		for flagName, line := range table {
			if _, ok := registered[flagName]; !ok {
				problems = append(problems,
					fmt.Sprintf("%s:%d: README documents flag -%s that %s does not register", readme, line, flagName, name))
			}
		}
	}
	return problems
}

// flagFuncs are the flag-package constructors whose first argument is
// the flag name; the *Var and Func forms take the name second.
var flagFuncs = map[string]int{
	"Bool": 0, "Duration": 0, "Float64": 0, "Int": 0, "Int64": 0,
	"String": 0, "Uint": 0, "Uint64": 0, "Func": 0, "TextVar": 1,
	"BoolVar": 1, "DurationVar": 1, "Float64Var": 1, "IntVar": 1,
	"Int64Var": 1, "StringVar": 1, "UintVar": 1, "Uint64Var": 1,
	"Var": 1,
}

// registeredFlags parses a command directory's non-test Go files and
// returns flag name -> "file:line" of each flag registration.
func registeredFlags(dir string, problems *[]string) map[string]string {
	flags := map[string]string{}
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		*problems = append(*problems, fmt.Sprintf("%s: %v", dir, err))
		return flags
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			*problems = append(*problems, fmt.Sprintf("%s: parse: %v", path, err))
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || pkg.Name != "flag" {
				return true
			}
			argIdx, ok := flagFuncs[sel.Sel.Name]
			if !ok || len(call.Args) <= argIdx {
				return true
			}
			lit, ok := call.Args[argIdx].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			flagName := strings.Trim(lit.Value, "`\"")
			p := fset.Position(call.Pos())
			flags[flagName] = fmt.Sprintf("%s:%d", path, p.Line)
			return true
		})
	}
	return flags
}

// mdLink matches inline markdown links; bare URLs and reference-style
// links are out of scope.
var mdLink = regexp.MustCompile(`\]\(([^)#]+)(#[^)]*)?\)`)

// checkMarkdownLinks verifies that relative links in the top-level
// markdown files resolve to existing files.
func checkMarkdownLinks(root string) []string {
	var problems []string
	entries, err := os.ReadDir(root)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", root, err)}
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".md") {
			continue
		}
		path := filepath.Join(root, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", path, err))
			continue
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := strings.TrimSpace(m[1])
				if target == "" || strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
					continue
				}
				resolved := filepath.Join(root, filepath.FromSlash(target))
				if _, err := os.Stat(resolved); err != nil {
					problems = append(problems, fmt.Sprintf("%s:%d: broken link %q", path, i+1, target))
				}
			}
		}
	}
	return problems
}
