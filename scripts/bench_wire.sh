#!/bin/sh
# bench_wire.sh — wire-protocol regression gate.
#
# Runs the wire ablation (one shared engine, 64 concurrent readers
# over 4 shaped servers; see bench.AblationWire) and records the table
# in BENCH_wire.json at the repo root, then asserts the two properties
# the tagged-frame mux is built for: the v2 fan-in rides a small fixed
# set of connections (<= 25% of the v1 pool's dial count) and gives up
# no bandwidth against the v1 parallel-dispatch baseline. Run it after
# touching internal/wire framing, the client mux, or the server's
# per-conn frame scheduler.
set -eu
cd "$(dirname "$0")/.."

echo "== bench wire: writing BENCH_wire.json =="
go run ./cmd/dpfs-bench -ablation wire -json > BENCH_wire.json
cat BENCH_wire.json

echo "== bench wire: asserting conn sharing and bandwidth =="
python3 - <<'EOF'
import json

rows = json.load(open("BENCH_wire.json"))
conns = {r["variant"]: r["conns"] for r in rows}
mbps = {r["variant"]: r["mbps"] for r in rows}

ratio = conns["v2 mux"] / conns["v1 pool"]
print(f"conns held: v1 pool {conns['v1 pool']}, v2 mux {conns['v2 mux']} "
      f"-> {ratio:.2%} of the pool's dials")
print(f"bandwidth: v1 pool {mbps['v1 pool']:.2f} MB/s, "
      f"v2 mux {mbps['v2 mux']:.2f} MB/s")
if ratio > 0.25:
    raise SystemExit(f"v2 mux used {ratio:.2%} of v1's conns, want <= 25%")
# The sim's service times dominate both variants, so equal bandwidth is
# the expectation; the 10% allowance absorbs host scheduling noise, not
# a real regression budget.
if mbps["v2 mux"] < 0.9 * mbps["v1 pool"]:
    raise SystemExit(
        f"v2 mux {mbps['v2 mux']:.2f} MB/s fell more than 10% below "
        f"the v1 baseline {mbps['v1 pool']:.2f} MB/s")
EOF
