#!/bin/sh
# check.sh — the repo's full verification gate:
#   1. tier-1: go build ./... && go test ./...
#   2. go vet ./...
#   3. govulncheck (soft-fail: warns when the tool or network is absent)
#   4. race-enabled test suite
#   5. seeded chaos suite under -race (fault injection e2e), plus a
#      3-seed DPFS_CHAOS_SWEEP including the replica-failover,
#      metashard, metarepl and gossip modes
#   6. dispatch + replica + wire + meta bench smokes
#      (BENCH_dispatch.json, BENCH_replica.json, BENCH_wire.json,
#      BENCH_meta.json)
#   7. documentation lint (godoc coverage + markdown links)
#   8. obslint: metric names vs the frozen manifest + Prometheus
#      exposition validity (scripts/obslint.sh)
# Run from the repo root (or anywhere inside it).
set -eu
cd "$(dirname "$0")/.."

echo "== tier-1: go build ./... =="
go build ./...
echo "== tier-1: go test ./... =="
go test ./...
echo "== go vet ./... =="
go vet ./...
echo "== govulncheck ./... (advisory) =="
if command -v govulncheck >/dev/null 2>&1; then
	govulncheck ./... || echo "WARNING: govulncheck failed or found issues (tool/network problem?); not blocking the gate" >&2
else
	echo "WARNING: govulncheck not installed; skipping the vulnerability scan (go install golang.org/x/vuln/cmd/govulncheck@latest)" >&2
fi
echo "== doccheck: godoc coverage + markdown links =="
go run ./scripts/doccheck
echo "== obslint: metric-name manifest + Prometheus format =="
sh scripts/obslint.sh
echo "== go test -race ./... =="
go test -race ./...
echo "== chaos: seeded fault-injection suite (-race) =="
go test -race -count=1 -run Chaos .
DPFS_CHAOS_SWEEP=3 go test -race -count=1 -run Chaos ./internal/fault
sh scripts/bench_smoke.sh
sh scripts/bench_replica.sh
sh scripts/bench_wire.sh
sh scripts/bench_meta.sh
echo "== all checks passed =="
