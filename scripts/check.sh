#!/bin/sh
# check.sh — the repo's full verification gate:
#   1. tier-1: go build ./... && go test ./...
#   2. go vet ./...
#   3. race-enabled test suite
#   4. seeded chaos suite under -race (fault injection e2e)
#   5. dispatch bench smoke (scripts/bench_smoke.sh -> BENCH_dispatch.json)
#   6. documentation lint (godoc coverage + markdown links)
# Run from the repo root (or anywhere inside it).
set -eu
cd "$(dirname "$0")/.."

echo "== tier-1: go build ./... =="
go build ./...
echo "== tier-1: go test ./... =="
go test ./...
echo "== go vet ./... =="
go vet ./...
echo "== doccheck: godoc coverage + markdown links =="
go run ./scripts/doccheck
echo "== go test -race ./... =="
go test -race ./...
echo "== chaos: seeded fault-injection suite (-race) =="
go test -race -count=1 -run Chaos . ./internal/fault
sh scripts/bench_smoke.sh
echo "== all checks passed =="
