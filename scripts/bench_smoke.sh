#!/bin/sh
# bench_smoke.sh — quick dispatch-path regression gate.
#
# Runs the dispatch benchmark once (sequential vs parallel per-server
# dispatch on the class-1 shaped cluster) and records the full ablation
# table — bandwidth plus p50/p95/p99 request latency per variant — in
# BENCH_dispatch.json at the repo root. Wired into `make check`; run it
# alone after touching the client engine's dispatch or wire paths.
set -eu
cd "$(dirname "$0")/.."

echo "== bench smoke: go test -bench=Dispatch -benchtime=1x =="
go test -run='^$' -bench=Dispatch -benchtime=1x .

echo "== bench smoke: writing BENCH_dispatch.json =="
go run ./cmd/dpfs-bench -ablation parallel -json > BENCH_dispatch.json
cat BENCH_dispatch.json
