// Command obslint enforces the repo's metric-naming contract. It
// cross-checks every Metric* string constant declared under internal/
// against the frozen manifest scripts/metric_names.txt, applies the
// naming rules (snake_case, counters end _total, histograms carry a
// _us/_bytes unit suffix unless the manifest marks them as
// dimensionless counts), and finally renders a registry populated
// with every manifest name through obs.WritePrometheus and validates
// the output with obs.LintPrometheus — a promtool-style format check.
//
// Run from the repo root (scripts/obslint.sh does):
//
//	go run ./scripts/obslint
//
// Any drift between source and manifest is an error: renaming or
// adding a metric must update scripts/metric_names.txt in the same
// change, so dashboards and alerts never silently lose a series.
package main

import (
	"bufio"
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"dpfs/internal/obs"
)

const manifestPath = "scripts/metric_names.txt"

var snakeCase = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// entry is one manifest line: a metric kind and its frozen name.
type entry struct {
	kind string
	name string
}

func main() {
	var problems []string
	fail := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	manifest, err := readManifest(manifestPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "obslint:", err)
		os.Exit(1)
	}
	declared, err := scanConstants("internal")
	if err != nil {
		fmt.Fprintln(os.Stderr, "obslint:", err)
		os.Exit(1)
	}

	byName := make(map[string]entry, len(manifest))
	for _, e := range manifest {
		if _, dup := byName[e.name]; dup {
			fail("manifest: duplicate entry %q", e.name)
		}
		byName[e.name] = e
	}

	// Every constant in source must be frozen in the manifest, and
	// every manifest entry must still exist in source.
	for _, name := range sortedKeys(declared) {
		if _, ok := byName[name]; !ok {
			fail("metric %q (%s) is not in %s — new or renamed metrics must update the manifest deliberately",
				name, strings.Join(declared[name], ", "), manifestPath)
		}
	}
	for _, e := range manifest {
		if _, ok := declared[e.name]; !ok {
			fail("manifest entry %q has no Metric* constant under internal/ — stale after a rename or removal?", e.name)
		}
	}

	// Naming rules, driven by the manifest's kind column.
	for _, e := range manifest {
		if !snakeCase.MatchString(e.name) {
			fail("metric %q is not snake_case", e.name)
		}
		switch e.kind {
		case "counter":
			if !strings.HasSuffix(e.name, "_total") {
				fail("counter %q must end in _total", e.name)
			}
		case "gauge":
			if strings.HasSuffix(e.name, "_total") {
				fail("gauge %q must not end in _total", e.name)
			}
		case "histogram":
			if !strings.HasSuffix(e.name, "_us") && !strings.HasSuffix(e.name, "_bytes") {
				fail("histogram %q needs a unit suffix (_us or _bytes), or the histogram_count kind if it is dimensionless", e.name)
			}
		case "histogram_count":
			if strings.HasSuffix(e.name, "_total") || strings.HasSuffix(e.name, "_us") || strings.HasSuffix(e.name, "_bytes") {
				fail("histogram_count %q should be a bare dimensionless name", e.name)
			}
		default:
			fail("manifest: unknown kind %q for %q", e.kind, e.name)
		}
	}

	// Format validity: register every manifest name (plus one example
	// of each dynamic family) in a registry, render it as Prometheus
	// text, and run the promtool-style linter over the output.
	reg := obs.NewRegistry()
	for _, e := range manifest {
		switch e.kind {
		case "counter":
			reg.Counter(e.name).Inc()
		case "gauge":
			reg.Gauge(e.name).Set(1)
		case "histogram", "histogram_count":
			reg.Histogram(e.name).Record(1)
		}
	}
	for _, dyn := range []string{"op_read_us", "query_select_us"} {
		reg.Histogram(dyn).Record(1)
	}
	var buf bytes.Buffer
	obs.WritePrometheus(&buf, map[string]*obs.Registry{"lint": reg})
	for _, issue := range obs.LintPrometheus(bytes.NewReader(buf.Bytes())) {
		fail("prometheus exposition: %s", issue)
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "obslint:", p)
		}
		fmt.Fprintf(os.Stderr, "obslint: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Printf("obslint: %d metric names OK against %s\n", len(manifest), manifestPath)
}

// readManifest parses scripts/metric_names.txt into its entries,
// skipping blank lines and # comments.
func readManifest(path string) ([]entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []entry
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want \"<kind> <name>\", got %q", path, line, text)
		}
		out = append(out, entry{kind: fields[0], name: fields[1]})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// scanConstants walks every non-test Go file under root and collects
// string constants whose identifier starts with "Metric", mapping
// each metric name to the declaration sites that use it.
func scanConstants(root string) (map[string][]string, error) {
	found := make(map[string][]string)
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, ident := range vs.Names {
					if !strings.HasPrefix(ident.Name, "Metric") || i >= len(vs.Values) {
						continue
					}
					lit, ok := vs.Values[i].(*ast.BasicLit)
					if !ok || lit.Kind != token.STRING {
						continue
					}
					name, err := strconv.Unquote(lit.Value)
					if err != nil {
						continue
					}
					found[name] = append(found[name], path+":"+ident.Name)
				}
			}
		}
		return nil
	})
	return found, err
}

// sortedKeys returns m's keys in sorted order for stable output.
func sortedKeys(m map[string][]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
