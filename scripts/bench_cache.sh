#!/bin/sh
# bench_cache.sh — client-cache regression gate.
#
# Runs the cache ablation (re-read and open-heavy workloads, cache off
# vs cache on; see bench.AblationCache) and records the table in
# BENCH_cache.json at the repo root, then asserts the re-read speedup
# the caching layer exists to deliver: cache-on must be at least 3x
# cache-off. Run it after touching internal/cache or the engine's
# read path.
set -eu
cd "$(dirname "$0")/.."

echo "== bench cache: writing BENCH_cache.json =="
go run ./cmd/dpfs-bench -ablation cache -json > BENCH_cache.json
cat BENCH_cache.json

echo "== bench cache: asserting re-read speedup >= 3x =="
python3 - <<'EOF'
import json

rows = json.load(open("BENCH_cache.json"))
mbps = {r["variant"]: r["mbps"] for r in rows}
off, on = mbps["Re-read, cache off"], mbps["Re-read, cache on"]
speedup = on / off
print(f"re-read: cache off {off:.2f} MB/s, cache on {on:.2f} MB/s -> {speedup:.1f}x")
opens_off = mbps["Open-heavy, cache off"]
opens_on = mbps["Open-heavy, cache on"]
print(f"open-heavy: cache off {opens_off:.0f} opens/s, cache on {opens_on:.0f} opens/s")
if speedup < 3:
    raise SystemExit(f"re-read speedup {speedup:.1f}x < required 3x")
EOF
