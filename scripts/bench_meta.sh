#!/bin/sh
# bench_meta.sh — metadata commit-pipeline regression gate.
#
# Runs the meta ablation (16 concurrent clients creating small files —
# an open-heavy workload where every create costs two durable catalog
# commits — over 1 or 2 catalog shards with WAL fsync on every commit
# and a modeled 4 ms per-fsync device cost; see bench.AblationMeta)
# and records the table in BENCH_meta.json at the repo root, then
# asserts the two properties the shard-ready metadata path is built
# for: group commit amortizes fsyncs across concurrent committers
# (>= 2x creates/s over fsync-per-txn on one shard) and path-hash
# routing scales the commit pipeline (2 shards >= 1.4x one shard, both
# without group commit so routing itself carries the win). A final
# row prices DESIGN.md §13 replication: the same workload against an
# R=3 majority-ack replica group must still commit (> 0 creates/s,
# reported as the replication tax against plain group commit). Run it
# after touching internal/metadb's WAL, meta.ShardRouter, the
# catalog transaction shapes in internal/meta, or internal/metarepl.
set -eu
cd "$(dirname "$0")/.."

echo "== bench meta: writing BENCH_meta.json =="
go run ./cmd/dpfs-bench -ablation meta -json > BENCH_meta.json
cat BENCH_meta.json

echo "== bench meta: asserting group-commit and shard scaling =="
python3 - <<'EOF'
import json

rows = json.load(open("BENCH_meta.json"))
rate = {r["variant"]: r["mbps"] for r in rows}  # creates per second

base = rate["1 shard fsync/txn"]
group = rate["1 shard group-commit"]
two = rate["2 shards fsync/txn"]
print(f"creates/s: 1 shard fsync/txn {base:.1f}, group-commit {group:.1f} "
      f"({group / base:.2f}x), 2 shards fsync/txn {two:.1f} ({two / base:.2f}x)")

# Group commit's win is the fsync batching factor: with 16 committers
# feeding one WAL, whole batches share each modeled 4 ms fsync, so the
# expected factor is well above the 2x floor (~4x in practice).
if group < 2.0 * base:
    raise SystemExit(
        f"group commit {group:.1f} creates/s is below 2x the "
        f"fsync-per-txn baseline {base:.1f}")
# Two shards double the serial fsync pipelines; the floor is 1.4x to
# absorb the unsharded work (server RPCs, broadcasts) both rows share.
if two < 1.4 * base:
    raise SystemExit(
        f"2 shards {two:.1f} creates/s is below 1.4x the 1-shard "
        f"baseline {base:.1f}")

# The replication row prices DESIGN.md §13: same workload, same group
# commit, but every txn also waits for a majority of an R=3 group to
# be durable. It must keep committing; the tax vs plain group commit
# is reported so regressions are visible in review diffs.
repl = rate["1 shard R=3 majority-ack"]
print(f"replication tax: R=3 majority-ack {repl:.1f} creates/s "
      f"({repl / group:.2f}x of group-commit)")
if repl <= 0:
    raise SystemExit("R=3 majority-ack row recorded no completed creates")
EOF
