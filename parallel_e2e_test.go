package dpfs_test

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"dpfs"
	"dpfs/internal/cluster"
)

// TestParallelDispatchE2E drives the public API with parallel dispatch
// enabled: several clients connect through the network metadata server
// and hammer their own files concurrently; every roundtrip must be
// byte-exact. Run under -race this covers the full stack — public
// wrapper, engine fan-out, pooled wire clients, servers.
func TestParallelDispatchE2E(t *testing.T) {
	const np = 4
	const size = 16 * 4096
	c, err := cluster.Start(cluster.Config{Servers: cluster.Uniform(4), Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	clients := make([]*dpfs.Client, np)
	for r := 0; r < np; r++ {
		clients[r], err = dpfs.Connect(c.MetaSrv.Addr(), r, dpfs.Options{
			Combine: true, Stagger: true, ParallelDispatch: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer clients[r].Close()
	}

	var wg sync.WaitGroup
	errs := make(chan error, np)
	for r := 0; r < np; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			f, err := clients[r].Create(fmt.Sprintf("/e2e-par-%d", r), 1, []int64{size},
				dpfs.Hint{Level: dpfs.Linear, BrickBytes: 4096})
			if err != nil {
				errs <- err
				return
			}
			defer f.Close()
			data := make([]byte, size)
			for i := range data {
				data[i] = byte(i*13 + r)
			}
			for round := 0; round < 3; round++ {
				if err := f.WriteAt(ctx, data, 0); err != nil {
					errs <- err
					return
				}
				got := make([]byte, size)
				if err := f.ReadAt(ctx, got, 0); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, data) {
					errs <- fmt.Errorf("client %d round %d: roundtrip mismatch", r, round)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
