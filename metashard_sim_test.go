package dpfs_test

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"dpfs"
	"dpfs/internal/cluster"
	"dpfs/internal/core"
	"dpfs/internal/meta"
)

// TestMetaShardSimulation is the deterministic meta-shard harness: an
// in-process cluster with three catalog shards serves a seeded
// concurrent create/write/read workload while individual shards are
// killed and restarted mid-run. Clients retry through the outages
// (their catalog connections redial lazily), and at the end the test
// asserts the two properties sharded metadata must keep: every file
// reads back byte-identical to the deterministic pattern its writer
// produced, and every file's catalog rows live on exactly the shard
// its path hashes to — no op was misrouted, even under failures.
func TestMetaShardSimulation(t *testing.T) {
	const (
		shards    = 3
		np        = 4
		perPhase  = 3 // files per client per phase
		fileBytes = 4096
	)
	c, err := cluster.Start(cluster.Config{
		Servers:    cluster.Uniform(3),
		Dir:        t.TempDir(),
		MetaShards: shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	clients := make([]*core.FS, np)
	for r := 0; r < np; r++ {
		fs, err := c.NewFS(r, core.Options{Combine: true})
		if err != nil {
			t.Fatal(err)
		}
		defer fs.Close()
		clients[r] = fs
	}

	path := func(rank, phase, i int) string {
		return fmt.Sprintf("/sim/r%d-ph%d-f%d.dat", rank, phase, i)
	}
	pattern := func(rank, phase, i int) []byte {
		data := make([]byte, fileBytes)
		for j := range data {
			data[j] = byte(j*31 + rank*7 + phase*13 + i*3 + 1)
		}
		return data
	}
	// retry runs op until it succeeds or the deadline passes; outages
	// surface as transport errors that a later attempt (against the
	// restarted shard) resolves.
	retry := func(what string, op func() error) error {
		var err error
		for attempt := 0; attempt < 2000; attempt++ {
			if err = op(); err == nil {
				return nil
			}
			select {
			case <-ctx.Done():
				return fmt.Errorf("%s: gave up after %v: %w", what, ctx.Err(), err)
			case <-time.After(2 * time.Millisecond):
			}
		}
		return fmt.Errorf("%s: still failing after 2000 attempts: %w", what, err)
	}

	// The directory is made once up front (broadcast to all shards)
	// so phase workloads only exercise file ops.
	cat, err := c.NewRouter()
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.Mkdir("/sim"); err != nil {
		t.Fatal(err)
	}

	hint := core.Hint{Level: dpfs.Linear, BrickBytes: 1024}
	workload := func(rank, phase int) error {
		for i := 0; i < perPhase; i++ {
			p := path(rank, phase, i)
			data := pattern(rank, phase, i)
			// Create with lost-ack tolerance: a retried create whose
			// earlier attempt committed before the shard died sees
			// "exists" — detect it by opening instead.
			err := retry("create "+p, func() error {
				f, err := clients[rank].Create(p, 1, []int64{fileBytes}, hint)
				if err != nil {
					if f2, err2 := clients[rank].Open(p); err2 == nil {
						f2.Close()
						return nil
					}
					return err
				}
				return f.Close()
			})
			if err != nil {
				return err
			}
			// Writes are idempotent (same bytes, same extent), so a
			// mid-write shard outage is retried whole.
			err = retry("write "+p, func() error {
				f, err := clients[rank].Open(p)
				if err != nil {
					return err
				}
				defer f.Close()
				return f.WriteSection(ctx, dpfs.FullSection([]int64{fileBytes}), data)
			})
			if err != nil {
				return err
			}
			// Read back immediately through the same routed catalog.
			err = retry("read "+p, func() error {
				f, err := clients[rank].Open(p)
				if err != nil {
					return err
				}
				defer f.Close()
				buf := make([]byte, fileBytes)
				if err := f.ReadSection(ctx, dpfs.FullSection([]int64{fileBytes}), buf); err != nil {
					return err
				}
				if !bytes.Equal(buf, data) {
					return fmt.Errorf("read %s: bytes differ", p)
				}
				return nil
			})
			if err != nil {
				return err
			}
		}
		return nil
	}

	// One phase per shard: kill that shard, run the concurrent phase
	// workload against the degraded catalog, restart the shard while
	// clients are still retrying, and wait for every client to finish.
	for phase := 0; phase < shards; phase++ {
		if err := c.StopMetaShard(phase); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make(chan error, np)
		for r := 0; r < np; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				if err := workload(rank, phase); err != nil {
					errs <- err
				}
			}(r)
		}
		time.Sleep(30 * time.Millisecond) // let clients hit the dead shard
		if err := c.RestartMetaShard(phase); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatalf("phase %d: %v", phase, err)
		}
	}

	// Full sweep through a fresh client: every file of every phase
	// must read back byte-identical.
	fresh, err := c.NewFS(np, core.Options{Combine: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	for rank := 0; rank < np; rank++ {
		for phase := 0; phase < shards; phase++ {
			for i := 0; i < perPhase; i++ {
				p := path(rank, phase, i)
				f, err := fresh.Open(p)
				if err != nil {
					t.Fatalf("open %s: %v", p, err)
				}
				buf := make([]byte, fileBytes)
				err = f.ReadSection(ctx, dpfs.FullSection([]int64{fileBytes}), buf)
				f.Close()
				if err != nil {
					t.Fatalf("read %s: %v", p, err)
				}
				if !bytes.Equal(buf, pattern(rank, phase, i)) {
					t.Fatalf("%s: contents differ from the written pattern", p)
				}
			}
		}
	}

	// Misrouting audit: inspect each shard's database directly (not
	// through the router) and require every file's rows to live on
	// exactly the shard its path hashes to.
	onShard := make([]map[string]bool, shards)
	for s := 0; s < shards; s++ {
		direct := meta.NewCatalog(c.DBs[s].Session())
		files, err := direct.Files()
		if err != nil {
			t.Fatal(err)
		}
		onShard[s] = make(map[string]bool, len(files))
		for _, p := range files {
			onShard[s][p] = true
		}
	}
	for rank := 0; rank < np; rank++ {
		for phase := 0; phase < shards; phase++ {
			for i := 0; i < perPhase; i++ {
				p := path(rank, phase, i)
				home := meta.ShardIndex(p, shards)
				for s := 0; s < shards; s++ {
					if s == home && !onShard[s][p] {
						t.Errorf("%s: missing from home shard %d", p, home)
					}
					if s != home && onShard[s][p] {
						t.Errorf("%s: misrouted onto shard %d (home %d)", p, s, home)
					}
				}
			}
		}
	}
}
