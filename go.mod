module dpfs

go 1.22
