// Checkpoint: the paper's motivating workload for array-level striping
// (Sec. 3.3). A simulated time-stepping application with NP processes
// periodically dumps its (BLOCK, *) distributed state, then restarts
// from the latest checkpoint. Because each process writes and reads
// its chunk as a whole, the file is created at the array level: one
// brick per chunk, one request per process per checkpoint.
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"os"
	"sync"

	"dpfs"
	"dpfs/internal/cluster"
	"dpfs/internal/core"
)

const (
	np    = 8   // compute processes
	side  = 512 // square grid edge
	steps = 3   // checkpoints to take
	rowsP = side / np
)

// process is one rank of the simulated application: it owns a
// (BLOCK, *) horizontal slab of a diffusion grid.
type process struct {
	rank int
	grid []float64 // rowsP x side
}

func (p *process) step() {
	// A toy relaxation so state actually changes between checkpoints.
	for i := range p.grid {
		p.grid[i] = p.grid[i]*0.5 + math.Sin(float64(i+p.rank))*0.5
	}
}

func (p *process) section() dpfs.Section {
	return dpfs.NewSection([]int64{int64(p.rank) * rowsP, 0}, []int64{rowsP, side})
}

func (p *process) bytes() []byte {
	out := make([]byte, len(p.grid)*8)
	for i, v := range p.grid {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

func (p *process) restore(b []byte) {
	for i := range p.grid {
		p.grid[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("checkpoint: ")

	dir, err := os.MkdirTemp("", "dpfs-checkpoint")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	clu, err := cluster.Start(cluster.Config{Servers: cluster.Uniform(4), Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer clu.Close()
	ctx := context.Background()

	// Rank 0 creates the checkpoint file with an array-level hint:
	// the (BLOCK, *) pattern over np processes makes each rank's slab
	// one whole brick.
	admin, err := clu.NewFS(0, core.Options{Combine: true})
	if err != nil {
		log.Fatal(err)
	}
	defer admin.Close()
	client := dpfs.Wrap(admin)
	if err := client.Mkdir("/ckpt"); err != nil {
		log.Fatal(err)
	}
	f, err := client.Create("/ckpt/state", 8, []int64{side, side}, dpfs.Hint{
		Level:   dpfs.Array,
		Pattern: []dpfs.Dist{dpfs.Block, dpfs.Star},
		Grid:    []int64{np, 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint file: %d bricks (one per rank), level %s\n",
		f.Geometry().NumBricks(), f.Geometry().Level)
	f.Close()

	// Launch the ranks.
	procs := make([]*process, np)
	for r := range procs {
		procs[r] = &process{rank: r, grid: make([]float64, rowsP*side)}
	}

	dump := func(step int) {
		dpfs.ResetStats()
		var wg sync.WaitGroup
		for _, p := range procs {
			wg.Add(1)
			go func(p *process) {
				defer wg.Done()
				fs, err := clu.NewFS(p.rank, core.Options{Combine: true, Stagger: true})
				if err != nil {
					log.Fatal(err)
				}
				defer fs.Close()
				f, err := fs.Open("/ckpt/state")
				if err != nil {
					log.Fatal(err)
				}
				defer f.Close()
				if err := f.WriteSection(ctx, p.section(), p.bytes()); err != nil {
					log.Fatal(err)
				}
			}(p)
		}
		wg.Wait()
		st := dpfs.ReadStats()
		fmt.Printf("step %d: dumped %d MiB in %d requests (%.1f req/rank)\n",
			step, st.BytesUseful>>20, st.Requests, float64(st.Requests)/np)
	}

	for s := 1; s <= steps; s++ {
		for _, p := range procs {
			p.step()
		}
		dump(s)
	}

	// Simulate a crash: throw all in-memory state away, then restart
	// from the checkpoint and verify it matches the last dump.
	saved := make([][]float64, np)
	for r, p := range procs {
		saved[r] = append([]float64(nil), p.grid...)
		p.grid = make([]float64, rowsP*side)
	}
	fmt.Println("simulated crash; restoring from DPFS")

	var wg sync.WaitGroup
	for _, p := range procs {
		wg.Add(1)
		go func(p *process) {
			defer wg.Done()
			fs, err := clu.NewFS(p.rank, core.Options{Combine: true, Stagger: true})
			if err != nil {
				log.Fatal(err)
			}
			defer fs.Close()
			f, err := fs.Open("/ckpt/state")
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			buf := make([]byte, p.section().Bytes(8))
			if err := f.ReadSection(ctx, p.section(), buf); err != nil {
				log.Fatal(err)
			}
			p.restore(buf)
		}(p)
	}
	wg.Wait()

	for r, p := range procs {
		for i := range p.grid {
			if p.grid[i] != saved[r][i] {
				log.Fatalf("rank %d: restored state differs at %d", r, i)
			}
		}
	}
	fmt.Println("restore verified: all ranks recovered their exact state")
}
