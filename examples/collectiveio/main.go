// Collectiveio: the paper's future-work layer in action (Sec. 10:
// "use DPFS as a low level system to service a high level interface
// such as MPI-I/O"). NP ranks hold interleaved rows of a matrix — a
// (CYCLIC, *) distribution, the worst case for independent I/O because
// every rank's rows fragment across every tile. The program writes the
// matrix twice, independently and through the two-phase collective
// layer, and prints the request counts and timings side by side.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"dpfs"
	"dpfs/internal/cluster"
	"dpfs/internal/collective"
	"dpfs/internal/core"
	"dpfs/internal/netsim"
	"dpfs/internal/stripe"
)

const (
	np   = 8
	n    = 512
	tile = 64
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("collectiveio: ")

	dir, err := os.MkdirTemp("", "dpfs-coll")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	clu, err := cluster.Start(cluster.Config{
		Servers: cluster.UniformClass(4, netsim.Class1()),
		Dir:     dir,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer clu.Close()
	ctx := context.Background()

	// One file per mode, same geometry.
	admin, err := clu.NewFS(0, core.Options{Combine: true})
	if err != nil {
		log.Fatal(err)
	}
	defer admin.Close()
	for _, path := range []string{"/indep", "/coll"} {
		f, err := admin.Create(path, 8, []int64{n, n},
			core.Hint{Level: stripe.LevelMultidim, Tile: []int64{tile, tile}})
		if err != nil {
			log.Fatal(err)
		}
		f.Close()
	}

	// Per-rank handles.
	files := map[string][]*core.File{}
	for _, path := range []string{"/indep", "/coll"} {
		files[path] = make([]*core.File, np)
		for r := 0; r < np; r++ {
			fs, err := clu.NewFS(r, core.Options{Combine: true, Stagger: true})
			if err != nil {
				log.Fatal(err)
			}
			defer fs.Close()
			files[path][r], err = fs.Open(path)
			if err != nil {
				log.Fatal(err)
			}
		}
	}

	fmt.Printf("%d ranks each writing %d interleaved rows of a %dx%d float64 matrix (tile %dx%d)\n\n",
		np, n/np, n, n, tile, tile)
	fmt.Printf("%-22s %10s %12s %10s\n", "mode", "requests", "elapsed", "MB/s")

	rowBytes := int64(n * 8)
	secFor := func(rank, round int) stripe.Section {
		return stripe.NewSection([]int64{int64(round*np + rank), 0}, []int64{1, n})
	}
	rounds := n / np

	runMode := func(label, path string, coll bool) {
		g, err := collective.NewGroup(np)
		if err != nil {
			log.Fatal(err)
		}
		dpfs.ResetStats()
		start := time.Now()
		var wg sync.WaitGroup
		for r := 0; r < np; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				row := make([]byte, rowBytes)
				for i := range row {
					row[i] = byte(rank)
				}
				for round := 0; round < rounds; round++ {
					sec := secFor(rank, round)
					var err error
					if coll {
						err = g.WriteAll(ctx, rank, files[path][rank], sec, row)
					} else {
						err = files[path][rank].WriteSection(ctx, sec, row)
					}
					if err != nil {
						log.Fatal(err)
					}
				}
			}(r)
		}
		wg.Wait()
		elapsed := time.Since(start)
		st := dpfs.ReadStats()
		mbps := float64(st.BytesUseful) / (1 << 20) / elapsed.Seconds()
		fmt.Printf("%-22s %10d %12v %10.1f\n", label, st.Requests, elapsed.Round(time.Millisecond), mbps)
	}

	runMode("independent", "/indep", false)
	runMode("collective (2-phase)", "/coll", true)

	// Both files end up identical.
	a := make([]byte, n*n*8)
	b := make([]byte, n*n*8)
	full := stripe.FullSection([]int64{n, n})
	if err := files["/indep"][0].ReadSection(ctx, full, a); err != nil {
		log.Fatal(err)
	}
	if err := files["/coll"][0].ReadSection(ctx, full, b); err != nil {
		log.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			log.Fatalf("independent and collective results differ at byte %d", i)
		}
	}
	fmt.Println("\nverified: both modes produced identical file contents")
	fmt.Println("the collective layer merges every round's", np, "single-row requests into")
	fmt.Println("brick-aligned transfers issued by one aggregator per server stripe.")
}
