// Heterogeneous: the Fig. 13 story as a runnable program. Storage is
// half class 1 (fast LAN disks) and half class 3 (slower metro-network
// disks); the same file is placed once with round-robin and once with
// the greedy algorithm of Fig. 8, and the program reports the brick
// split and the measured write/read bandwidth of both placements.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"dpfs"
	"dpfs/internal/cluster"
	"dpfs/internal/core"
	"dpfs/internal/netsim"
	"dpfs/internal/stripe"
)

// Scale matches cmd/dpfs-bench's Fig. 13 defaults: small enough that
// the simulated device costs (netsim), not the host's real disk,
// dominate the measurement.
const (
	n    = 512 // array edge
	tile = 64
	np   = 8
	io   = 8
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("heterogeneous: ")

	dir, err := os.MkdirTemp("", "dpfs-het")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	clu, err := cluster.Start(cluster.Config{
		Servers:       cluster.Mixed(io), // half class 1, half class 3
		Dir:           dir,
		RefBrickBytes: tile * tile * 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer clu.Close()
	ctx := context.Background()

	fmt.Printf("storage: %d servers, half %s half %s\n", io, netsim.Class1().Name, netsim.Class3().Name)
	perfParams := make([]netsim.Params, io)
	for i, spec := range cluster.Mixed(io) {
		perfParams[i] = spec.Class
	}
	perf := netsim.NormalizedPerf(perfParams, tile*tile*8)
	fmt.Printf("normalized performance numbers: %v\n\n", perf)

	placements := []struct {
		name string
		p    dpfs.Placement
	}{
		{"round-robin", dpfs.RoundRobin{}},
		{"greedy", dpfs.Greedy{Perf: perf}},
	}

	fmt.Printf("%-12s %22s %14s %14s\n", "placement", "bricks fast/slow", "write MB/s", "read MB/s")
	for _, pl := range placements {
		fast, slow, wr, rd := runPlacement(ctx, clu, pl.name, pl.p)
		fmt.Printf("%-12s %15d / %4d %14.1f %14.1f\n", pl.name, fast, slow, wr, rd)
	}
	fmt.Println("\nthe greedy algorithm hands the fast servers ~3x the bricks, so neither")
	fmt.Println("class finishes long before the other and bandwidth rises (paper Fig. 13).")
}

func runPlacement(ctx context.Context, clu *cluster.Cluster, name string, placement dpfs.Placement) (fast, slow int, writeMBps, readMBps float64) {
	path := "/het-" + name
	admin, err := clu.NewFS(0, core.Options{Combine: true})
	if err != nil {
		log.Fatal(err)
	}
	defer admin.Close()

	f, err := admin.Create(path, 8, []int64{n, n}, dpfs.Hint{
		Level:     dpfs.Multidim,
		Tile:      []int64{tile, tile},
		Placement: placement,
		Servers:   clu.ServerNames(),
	})
	if err != nil {
		log.Fatal(err)
	}
	// Count the brick split from the catalog's own records.
	_, assign, err := admin.Catalog().LookupFile(path)
	if err != nil {
		log.Fatal(err)
	}
	lists := stripe.BrickLists(assign, io)
	for s, l := range lists {
		if s < io/2 {
			fast += len(l)
		} else {
			slow += len(l)
		}
	}
	f.Close()

	// One warm-up pass (subfile creation, connection dialing), then
	// the median of three measured passes.
	access(ctx, clu, path, true)
	writeMBps = median3(func() float64 { return access(ctx, clu, path, true) })
	readMBps = median3(func() float64 { return access(ctx, clu, path, false) })
	return fast, slow, writeMBps, readMBps
}

func median3(f func() float64) float64 {
	a, b, c := f(), f(), f()
	switch {
	case (a <= b && b <= c) || (c <= b && b <= a):
		return b
	case (b <= a && a <= c) || (c <= a && a <= b):
		return a
	}
	return c
}

// access runs np ranks each writing or reading its (BLOCK, *) slab and
// returns the aggregate bandwidth.
func access(ctx context.Context, clu *cluster.Cluster, path string, write bool) float64 {
	var wg sync.WaitGroup
	start := time.Now()
	var total int64
	var mu sync.Mutex
	for r := 0; r < np; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			fs, err := clu.NewFS(rank, core.Options{Combine: true, Stagger: true})
			if err != nil {
				log.Fatal(err)
			}
			defer fs.Close()
			f, err := fs.Open(path)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			h := int64(n / np)
			sec := dpfs.NewSection([]int64{int64(rank) * h, 0}, []int64{h, n})
			buf := make([]byte, sec.Bytes(8))
			if write {
				err = f.WriteSection(ctx, sec, buf)
			} else {
				err = f.ReadSection(ctx, sec, buf)
			}
			if err != nil {
				log.Fatal(err)
			}
			mu.Lock()
			total += int64(len(buf))
			mu.Unlock()
		}(r)
	}
	wg.Wait()
	return float64(total) / (1 << 20) / time.Since(start).Seconds()
}
