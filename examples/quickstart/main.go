// Quickstart: bring up a complete DPFS deployment in one process (a
// metadata server and four I/O servers), create a striped file through
// the public API, write and read an array section, and inspect the
// catalog — the five-minute tour of the system.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"os"

	"dpfs"
	"dpfs/internal/cluster"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	dir, err := os.MkdirTemp("", "dpfs-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A metadata server plus four I/O servers, all in-process. In a
	// real deployment these are cmd/dpfs-meta and cmd/dpfs-server on
	// separate machines.
	clu, err := cluster.Start(cluster.Config{Servers: cluster.Uniform(4), Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer clu.Close()

	// Connect like any external client: over TCP to the metadata
	// server. Request combination and staggered scheduling on.
	client, err := dpfs.Connect(clu.MetaSrv.Addr(), 0, dpfs.Options{Combine: true, Stagger: true})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	ctx := context.Background()

	servers, err := client.Servers()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered I/O servers: %d\n", len(servers))

	// Create a 1024x1024 float64 array striped as 128x128 tiles
	// (multidimensional level) across all servers.
	if err := client.Mkdir("/demo"); err != nil {
		log.Fatal(err)
	}
	f, err := client.Create("/demo/matrix", 8, []int64{1024, 1024}, dpfs.Hint{
		Level: dpfs.Multidim,
		Tile:  []int64{128, 128},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("created %s: %d bricks on %d servers, placement %s\n",
		f.Info().Path, f.Geometry().NumBricks(), len(f.Info().Servers), f.Info().Placement)

	// Write the full array.
	full := dpfs.FullSection([]int64{1024, 1024})
	data := make([]byte, full.Bytes(8))
	for i := range data {
		data[i] = byte(i)
	}
	if err := f.WriteSection(ctx, full, data); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d MiB\n", len(data)>>20)

	// Read a column block back — the access pattern that motivates
	// multidimensional striping.
	col := dpfs.NewSection([]int64{0, 256}, []int64{1024, 128})
	buf := make([]byte, col.Bytes(8))
	dpfs.ResetStats()
	if err := f.ReadSection(ctx, col, buf); err != nil {
		log.Fatal(err)
	}
	st := dpfs.ReadStats()
	fmt.Printf("column read: %d KiB useful in %d requests, %d KiB moved\n",
		st.BytesUseful>>10, st.Requests, st.BytesTransferred>>10)

	// Verify a slice against what we wrote.
	want := data[(0*1024+256)*8 : (0*1024+256+128)*8]
	if !bytes.Equal(buf[:128*8], want) {
		log.Fatal("data mismatch!")
	}
	fmt.Println("verified: bytes match the original write")

	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	// The catalog knows everything about the file.
	fi, err := client.Stat("/demo/matrix")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalog: owner=%s size=%d level=%s tile=%v\n",
		fi.Owner, fi.Size, fi.Geometry.Level, fi.Geometry.Tile)

	if err := client.Remove(ctx, "/demo/matrix"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("removed; quickstart done")
}
