// Columnread: the worked example of Figs. 5 and 6. The same 2-d array
// is stored twice — once with linear striping, once with
// multidimensional striping — and read back column-wise, the
// (*, BLOCK) pattern of matrix codes. The program prints the brick and
// byte traffic of both layouts, reproducing the paper's argument: a
// column read of a linear file touches every brick and discards most
// of each, while the multidimensional file touches only the tiles the
// column intersects.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"dpfs"
	"dpfs/internal/cluster"
	"dpfs/internal/core"
	"dpfs/internal/netsim"
)

const (
	n    = 1024 // array edge (elements, float64)
	tile = 128  // multidim tile edge
	np   = 8    // reading processes
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("columnread: ")

	dir, err := os.MkdirTemp("", "dpfs-columnread")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	// Four class-1 servers so the timings mean something.
	clu, err := cluster.Start(cluster.Config{
		Servers: cluster.UniformClass(4, netsim.Class1()),
		Dir:     dir,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer clu.Close()
	ctx := context.Background()

	fs, err := clu.NewFS(0, core.Options{Combine: true, Stagger: true})
	if err != nil {
		log.Fatal(err)
	}
	defer fs.Close()
	client := dpfs.Wrap(fs)

	dims := []int64{n, n}
	full := dpfs.FullSection(dims)
	data := make([]byte, full.Bytes(8))
	for i := range data {
		data[i] = byte(i)
	}

	// The same array, two layouts, same brick byte size.
	layouts := []struct {
		path string
		hint dpfs.Hint
	}{
		{"/linear.dat", dpfs.Hint{Level: dpfs.Linear, BrickBytes: tile * tile * 8}},
		{"/multidim.dat", dpfs.Hint{Level: dpfs.Multidim, Tile: []int64{tile, tile}}},
	}
	for _, l := range layouts {
		f, err := client.Create(l.path, 8, dims, l.hint)
		if err != nil {
			log.Fatal(err)
		}
		if err := f.WriteSection(ctx, full, data); err != nil {
			log.Fatal(err)
		}
		f.Close()
	}

	fmt.Printf("array: %dx%d float64 (%d MiB), brick %d KiB, %d processes reading (*, BLOCK)\n\n",
		n, n, (n*n*8)>>20, (tile*tile*8)>>10, np)
	fmt.Printf("%-14s %10s %12s %12s %10s %10s\n",
		"layout", "requests", "moved KiB", "useful KiB", "waste", "elapsed")

	for _, l := range layouts {
		reqs, moved, useful, elapsed := readColumns(ctx, clu, l.path)
		fmt.Printf("%-14s %10d %12d %12d %9.1fx %10v\n",
			l.hint.Level.String(), reqs, moved>>10, useful>>10,
			float64(moved)/float64(useful), elapsed.Round(time.Millisecond))
	}

	fmt.Println("\nmultidimensional striping touches only the tiles the columns cross;")
	fmt.Println("linear striping fetches every brick of the file and discards most of it.")
}

// readColumns has np goroutines each read its (*, BLOCK) column slice.
func readColumns(ctx context.Context, clu *cluster.Cluster, path string) (reqs, moved, useful int64, elapsed time.Duration) {
	dpfs.ResetStats()
	start := time.Now()
	done := make(chan error, np)
	for r := 0; r < np; r++ {
		go func(rank int) {
			fs, err := clu.NewFS(rank, core.Options{Combine: true, Stagger: true})
			if err != nil {
				done <- err
				return
			}
			defer fs.Close()
			f, err := fs.Open(path)
			if err != nil {
				done <- err
				return
			}
			defer f.Close()
			w := int64(n / np)
			sec := dpfs.NewSection([]int64{0, int64(rank) * w}, []int64{n, w})
			buf := make([]byte, sec.Bytes(8))
			done <- f.ReadSection(ctx, sec, buf)
		}(r)
	}
	for i := 0; i < np; i++ {
		if err := <-done; err != nil {
			log.Fatal(err)
		}
	}
	elapsed = time.Since(start)
	st := dpfs.ReadStats()
	return st.Requests, st.BytesTransferred, st.BytesUseful, elapsed
}
