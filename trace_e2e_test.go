package dpfs_test

import (
	"context"
	"testing"
	"time"

	"dpfs/internal/cluster"
	"dpfs/internal/core"
	"dpfs/internal/obs"
	"dpfs/internal/stripe"
)

// TestStitchedTraceE2E runs a striped read through 4 real TCP servers
// with tracing enabled and asserts the client's trace ring holds one
// stitched cross-process tree: the client.request root, one server.rpc
// child per contacted server, and under each of those the server-side
// server.request and server.subfile spans returned in the response
// trailer — all sharing the root's TraceID.
func TestStitchedTraceE2E(t *testing.T) {
	const io = 4
	c, err := cluster.Start(cluster.Config{Servers: cluster.Uniform(io), Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	fs, err := c.NewFS(0, core.Options{Combine: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	log := fs.EnableTracing(16)

	// 8 bricks round-robin over 4 servers: the read fans out to one
	// combined request (2 bricks) per server.
	f, err := fs.Create("/stitched.bin", 1, []int64{8 * 4096}, core.Hint{
		Level: stripe.LevelLinear, BrickBytes: 4096, Placement: stripe.RoundRobin{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data := make([]byte, 8*4096)
	for i := range data {
		data[i] = byte(i)
	}
	if err := f.WriteAt(ctx, data, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.ReadAt(ctx, make([]byte, len(data)), 0); err != nil {
		t.Fatal(err)
	}

	// Find the read's trace: the most recent client.request root with
	// Op "read".
	var tr *obs.Trace
	for _, cand := range log.Traces() {
		if cand.Root.Name == "client.request" && cand.Root.Op == "read" {
			tr = cand
		}
	}
	if tr == nil {
		t.Fatalf("no client.request read trace recorded; have %d traces", log.Len())
	}
	root := tr.Root
	if root.TraceID == 0 || root.Duration <= 0 {
		t.Fatalf("incomplete root span %+v", root)
	}

	// Every span in the stitched tree shares the root's TraceID and
	// links back to a parent inside the same tree.
	byID := map[uint64]*obs.Span{}
	for _, sp := range tr.Spans() {
		if sp.TraceID != root.TraceID {
			t.Fatalf("span %s has TraceID %016x, want %016x:\n%s", sp.Name, sp.TraceID, root.TraceID, tr)
		}
		byID[sp.SpanID] = sp
	}
	for _, sp := range tr.Spans() {
		if sp != root && byID[sp.ParentID] == nil {
			t.Fatalf("span %s has dangling ParentID %016x:\n%s", sp.Name, sp.ParentID, tr)
		}
	}

	// One server.rpc child per contacted server, and under each a
	// server-side server.request span carrying subfile I/O spans —
	// proof the server's spans crossed the wire and stitched on.
	rpcServers := map[string]bool{}
	for _, rpc := range root.Children() {
		if rpc.Name != "server.rpc" {
			continue
		}
		if rpcServers[rpc.Server] {
			t.Fatalf("duplicate server.rpc span for %q:\n%s", rpc.Server, tr)
		}
		rpcServers[rpc.Server] = true
		var remote *obs.Span
		for _, ch := range rpc.Children() {
			if ch.Name == "server.request" {
				remote = ch
			}
		}
		if remote == nil {
			t.Fatalf("server.rpc to %q has no adopted server.request span:\n%s", rpc.Server, tr)
		}
		if remote.ParentID != rpc.SpanID {
			t.Fatalf("server.request parent = %016x, want rpc span %016x", remote.ParentID, rpc.SpanID)
		}
		subfiles := 0
		for _, ch := range remote.Children() {
			if ch.Name == "server.subfile" {
				subfiles++
			}
		}
		if subfiles == 0 {
			t.Fatalf("server.request on %q has no server.subfile spans:\n%s", rpc.Server, tr)
		}
	}
	if len(rpcServers) != io {
		t.Fatalf("stitched trace spans %d servers, want %d:\n%s", len(rpcServers), io, tr)
	}
}
