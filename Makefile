.PHONY: build test check bench

build:
	go build ./...

test:
	go test ./...

# The full verification gate: tier-1 build+test, vet, and the
# race-enabled suite. See scripts/check.sh.
check:
	sh scripts/check.sh

bench:
	go run ./cmd/dpfs-bench
