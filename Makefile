.PHONY: build test check bench chaos docs

build:
	go build ./...

test:
	go test ./...

# The full verification gate: tier-1 build+test, vet, and the
# race-enabled suite. See scripts/check.sh.
check:
	sh scripts/check.sh

bench:
	go run ./cmd/dpfs-bench

# Extended chaos run: the full seeded fault-injection suite plus a
# 25-seed sweep of the cluster workload, all under the race detector.
chaos:
	go test -race -count=1 -run Chaos -v .
	DPFS_CHAOS_SWEEP=25 go test -race -count=1 -run Chaos -v ./internal/fault

# Documentation gate: vet, godoc coverage + markdown link lint
# (scripts/doccheck), and a `go doc` smoke over the public surface.
docs:
	go vet ./...
	go run ./scripts/doccheck
	go doc . > /dev/null
	go doc ./internal/cache > /dev/null
	go doc ./internal/core > /dev/null
	go doc ./internal/fault > /dev/null
	go doc ./internal/obs > /dev/null
