// Command dpfs-sh is the DPFS user interface of Section 7: an
// interactive shell with UNIX-like commands (ls, pwd, cd, mkdir,
// rmdir, rm, stat, df, cp, cat, stats) over a DPFS deployment,
// including data transfer between sequential files and DPFS (cp with
// local: paths). The stats command prints the session's own traffic
// counters and request-latency percentiles; trace and events expose
// the session's distributed traces and cluster event log.
//
// Usage:
//
//	dpfs-sh -meta 127.0.0.1:7700            # interactive
//	dpfs-sh -meta 127.0.0.1:7700 -c "ls /"  # one command
//	dpfs-sh -meta 127.0.0.1:7700 -trace     # record distributed traces
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"dpfs"
	"dpfs/internal/obs"
	"dpfs/internal/shell"
)

// traceCap is the session's trace-ring capacity under -trace.
const traceCap = 256

func main() {
	metaAddr := flag.String("meta", "127.0.0.1:7700", "metadata server address")
	metaAddrs := flag.String("meta-addrs", "", "catalog shard addresses, path-hash routed (overrides -meta; every client must list the same order); semicolons separate shards, commas a shard's replicas: 'h1a,h1b;h2a' or legacy comma-only 'h1,h2'")
	command := flag.String("c", "", "run one command and exit")
	rank := flag.Int("rank", 0, "compute rank (drives staggered scheduling)")
	cacheMB := flag.Int64("cache-mb", 0, "client data-cache budget in MiB (0 = cache off)")
	metaTTL := flag.Duration("meta-ttl", 0, "client metadata-cache TTL (0 = cache off)")
	readahead := flag.Int("readahead", 0, "sequential readahead depth in bricks (needs -cache-mb)")
	replicas := flag.Int("replicas", 0, "replication factor for files this shell creates (0 = engine default of 1)")
	trace := flag.Bool("trace", false, "record distributed request traces (see the trace command)")
	traceSample := flag.Float64("trace-sample", 1.0, "fraction of traced requests that propagate trace context to the servers")
	slowMS := flag.Int64("slow-request-ms", 0, "log requests slower than this to the event log with their full trace (0 = off)")
	wireV2 := flag.Bool("wire-v2", false, "use the tagged-frame wire protocol (multiplexed conns, streamed payloads)")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	if *version {
		fmt.Println("dpfs-sh", obs.Build().String())
		return
	}

	groups := [][]string{{*metaAddr}}
	if *metaAddrs != "" {
		groups = dpfs.ParseMetaAddrs(*metaAddrs)
	}
	client, err := dpfs.ConnectGroups(groups, *rank, dpfs.Options{Combine: true, Stagger: true,
		CacheBytes: *cacheMB << 20, MetaTTL: *metaTTL, Readahead: *readahead,
		TraceSample: *traceSample, SlowRequest: time.Duration(*slowMS) * time.Millisecond,
		WireV2: *wireV2})
	if err != nil {
		fatal(err)
	}
	defer client.Close()
	if *trace {
		client.Engine().EnableTracing(traceCap)
	}
	sh := shell.New(client)
	sh.SetReplicas(*replicas)
	ctx := context.Background()

	if *command != "" {
		out, err := sh.Run(ctx, *command)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		return
	}

	fmt.Println("DPFS shell (type 'help' for commands, ctrl-D to exit)")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Printf("dpfs:%s> ", sh.Cwd())
		if !scanner.Scan() {
			fmt.Println()
			return
		}
		out, err := sh.Run(ctx, scanner.Text())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			continue
		}
		fmt.Print(out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpfs-sh:", err)
	os.Exit(1)
}
