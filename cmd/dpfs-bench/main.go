// Command dpfs-bench regenerates the paper's evaluation figures
// (Figs. 11-14 of Section 8) and the ablation studies listed in
// DESIGN.md, printing one table row per bar. The testbed is built
// in-process: real TCP servers shaped by the netsim storage classes.
//
// Usage:
//
//	dpfs-bench -fig 11          # one figure
//	dpfs-bench -fig 0           # all four figures
//	dpfs-bench -n 1024          # larger array (paper: 32768)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"dpfs/internal/bench"
	"dpfs/internal/fault"
	"dpfs/internal/obs"
	"dpfs/internal/server"
)

// jsonRow is one measurement in -json output (BENCH_dispatch.json and
// friends).
type jsonRow struct {
	Figure    string  `json:"figure"`
	Class     string  `json:"class"`
	Variant   string  `json:"variant"`
	MBps      float64 `json:"mbps"`
	ElapsedUS int64   `json:"elapsed_us"`
	Requests  int64   `json:"requests"`
	MovedMB   float64 `json:"moved_mb"`
	UsefulMB  float64 `json:"useful_mb"`
	P50US     int64   `json:"p50_us"`
	P95US     int64   `json:"p95_us"`
	P99US     int64   `json:"p99_us"`
	Conns     int64   `json:"conns"`
}

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (11-14; 0 = all)")
	ablation := flag.String("ablation", "", "run an ablation instead: stagger, shape, servers, exact, collective, parallel, cache, replica, wire, meta, or all")
	n := flag.Int64("n", 512, "array edge in elements (paper: 32768)")
	tile := flag.Int64("tile", 0, "multidim tile edge (default n/8; paper: 256)")
	reps := flag.Int("reps", 3, "repetitions per bar (median reported)")
	dir := flag.String("dir", "", "scratch directory (default: a temp dir)")
	csvOut := flag.Bool("csv", false, "emit CSV instead of aligned text")
	jsonOut := flag.Bool("json", false, "emit a JSON array instead of aligned text")
	parallel := flag.Bool("parallel", false, "dispatch each access's per-server requests concurrently")
	faultSpec := flag.String("fault-spec", "", "fault schedule for measured traffic, e.g. 'drop:prob=0.02;delay:prob=0.05,ms=2' (see internal/fault)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for probabilistic fault rules (deterministic per seed)")
	cacheMB := flag.Int64("cache-mb", 0, "client data-cache budget in MiB for measured engines (0 = cache off)")
	metaTTL := flag.Duration("meta-ttl", 0, "client metadata-cache TTL for measured engines (0 = cache off)")
	readahead := flag.Int("readahead", 0, "sequential readahead depth in bricks (needs -cache-mb)")
	wireV2 := flag.Bool("wire-v2", false, "use the tagged-frame wire protocol for measured engines")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	if *version {
		fmt.Println("dpfs-bench", obs.Build().String())
		return
	}

	scratch := *dir
	if scratch == "" {
		var err error
		scratch, err = os.MkdirTemp("", "dpfs-bench")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(scratch)
	}
	cfg := bench.Config{N: *n, Tile: *tile, Dir: scratch, Reps: *reps, Parallel: *parallel,
		CacheBytes: *cacheMB << 20, MetaTTL: *metaTTL, Readahead: *readahead,
		WireV2: *wireV2}
	if *faultSpec != "" {
		inj, err := fault.Parse(*faultSpec, *faultSeed)
		if err != nil {
			fatal(err)
		}
		cfg.Fault = inj
		// A fault run needs headroom to retry through its own schedule.
		cfg.Retry = server.RetryPolicy{MaxRetries: 8,
			BackoffBase: time.Millisecond, BackoffMax: 50 * time.Millisecond}
	}
	ctxAbl := context.Background()

	var rows []jsonRow
	emit := func(ms []bench.Measurement) {
		for _, m := range ms {
			switch {
			case *jsonOut:
				rows = append(rows, jsonRow{
					Figure: m.Figure, Class: m.Class, Variant: m.Label,
					MBps: m.MBps, ElapsedUS: m.Elapsed.Microseconds(),
					Requests: m.Requests, MovedMB: m.MovedMB, UsefulMB: m.UsefulMB,
					P50US: m.Lat50.Microseconds(), P95US: m.Lat95.Microseconds(), P99US: m.Lat99.Microseconds(),
					Conns: m.Conns,
				})
			case *csvOut:
				fmt.Printf("%s,%s,%s,%.3f,%d,%d,%.3f,%.3f,%d,%d,%d,%d\n",
					m.Figure, m.Class, m.Label, m.MBps, m.Elapsed.Microseconds(),
					m.Requests, m.MovedMB, m.UsefulMB,
					m.Lat50.Microseconds(), m.Lat95.Microseconds(), m.Lat99.Microseconds(),
					m.Conns)
			default:
				fmt.Println(m)
			}
		}
	}
	banner := func(format string, args ...any) {
		if !*jsonOut {
			fmt.Printf(format, args...)
		}
	}
	flush := func() {
		if !*jsonOut {
			return
		}
		out, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
	}
	if *csvOut && !*jsonOut {
		fmt.Println("figure,class,variant,mbps,elapsed_us,requests,moved_mb,useful_mb,p50_us,p95_us,p99_us,conns")
	}

	if *ablation != "" {
		names := []string{*ablation}
		if *ablation == "all" {
			names = bench.AblationNames()
		}
		for _, name := range names {
			banner("== Ablation: %s ==\n", name)
			ms, err := bench.Ablation(ctxAbl, cfg, name)
			if err != nil {
				fatal(err)
			}
			emit(ms)
			banner("\n")
		}
		flush()
		return
	}

	figs := []int{11, 12, 13, 14}
	if *fig != 0 {
		figs = []int{*fig}
	}
	ctx := context.Background()
	for _, f := range figs {
		banner("== Figure %d ==\n", f)
		ms, err := bench.Figure(ctx, cfg, f)
		if err != nil {
			fatal(err)
		}
		emit(ms)
		banner("\n")
	}
	flush()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpfs-bench:", err)
	os.Exit(1)
}
