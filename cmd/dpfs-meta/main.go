// Command dpfs-meta runs the DPFS metadata database server: the role
// POSTGRES plays in the paper (Section 5). It serves SQL over TCP to
// DPFS clients, servers and shells, with durable storage (write-ahead
// log + snapshots) under -dir.
//
// Usage:
//
//	dpfs-meta -addr :7700 -dir /var/lib/dpfs-meta
//
// With -debug-addr the daemon also serves /metrics (Prometheus text),
// /healthz, /debug/vars (JSON), /debug/trace, /debug/events and
// /debug/pprof over HTTP for scraping and debugging.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dpfs/internal/meta"
	"dpfs/internal/metadb"
	"dpfs/internal/metadb/mdbnet"
	"dpfs/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7700", "TCP listen address")
	dir := flag.String("dir", "", "durable storage directory (empty = in-memory)")
	sync := flag.Bool("sync", false, "fsync the write-ahead log on every commit")
	groupCommit := flag.Bool("group-commit", true, "with -sync, batch concurrent commits into shared fsyncs (same durability, one fsync per batch)")
	groupWait := flag.Duration("group-commit-wait", 0, "how long a group-commit leader lingers for followers before fsyncing (0 = fsync immediately; batches still form while an fsync is in flight)")
	debugAddr := flag.String("debug-addr", "", "HTTP address for /metrics, /healthz and /debug/vars (default: disabled)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown bound: in-flight statements get this long to finish on SIGTERM/SIGINT")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	if *version {
		fmt.Println("dpfs-meta", obs.Build().String())
		return
	}

	db, err := metadb.Open(metadb.Options{
		Dir: *dir, Sync: *sync,
		GroupCommit: *groupCommit, GroupCommitWait: *groupWait,
	})
	if err != nil {
		fatal(err)
	}
	defer db.Close()

	// Initialize the DPFS schema so freshly-pointed clients find the
	// four tables of Fig. 10.
	cat := meta.NewCatalog(db.Session())
	if err := cat.Init(); err != nil {
		fatal(err)
	}

	srv, err := mdbnet.Listen(db, *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dpfs-meta: serving DPFS metadata on %s (dir=%q sync=%v)\n", srv.Addr(), *dir, *sync)

	if *debugAddr != "" {
		regs := map[string]*obs.Registry{"db": db.Metrics(), "net": srv.Metrics()}
		obs.PublishExpvar("dpfs", regs)
		h := obs.NewHandler(obs.HandlerConfig{
			Regs: regs,
			Health: func() obs.Health {
				return obs.Health{Status: "ok", Detail: map[string]any{
					"addr":   srv.Addr(),
					"dir":    *dir,
					"sync":   *sync,
					"tables": len(db.TableNames()),
				}}
			},
			Traces: srv.Traces(),
			Pprof:  true,
		})
		dbg, err := obs.StartDebug(*debugAddr, h)
		if err != nil {
			fatal(fmt.Errorf("debug server: %w", err))
		}
		defer dbg.Close()
		fmt.Printf("dpfs-meta: debug endpoints on http://%s/metrics\n", dbg.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("dpfs-meta: draining (up to %v; signal again to force)\n", *drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	go func() {
		<-sig
		cancel()
	}()
	err = srv.Shutdown(ctx)
	cancel()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpfs-meta: forced shutdown:", err)
		os.Exit(1)
	}
	fmt.Println("dpfs-meta: drained")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpfs-meta:", err)
	os.Exit(1)
}
