// Command dpfs-meta runs the DPFS metadata database server: the role
// POSTGRES plays in the paper (Section 5). It serves SQL over TCP to
// DPFS clients, servers and shells, with durable storage (write-ahead
// log + snapshots) under -dir.
//
// Usage:
//
//	dpfs-meta -addr :7700 -dir /var/lib/dpfs-meta
//
// With -repl-factor N the catalog runs as an N-way replica group in
// this process (DESIGN.md §13): replica 0 serves -addr, the others
// listen on ephemeral addresses printed at startup, and a commit is
// acknowledged only once the -repl-ack quorum holds it durably. Point
// clients at every replica with the printed -meta-addrs value; they
// follow the primary across failovers by redirect.
//
// With -debug-addr the daemon also serves /metrics (Prometheus text),
// /healthz, /debug/vars (JSON), /debug/trace, /debug/events and
// /debug/pprof over HTTP for scraping and debugging.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dpfs/internal/meta"
	"dpfs/internal/metadb"
	"dpfs/internal/metadb/mdbnet"
	"dpfs/internal/metarepl"
	"dpfs/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7700", "TCP listen address")
	dir := flag.String("dir", "", "durable storage directory (empty = in-memory)")
	sync := flag.Bool("sync", false, "fsync the write-ahead log on every commit")
	groupCommit := flag.Bool("group-commit", true, "with -sync, batch concurrent commits into shared fsyncs (same durability, one fsync per batch)")
	groupWait := flag.Duration("group-commit-wait", 0, "how long a group-commit leader lingers for followers before fsyncing (0 = fsync immediately; batches still form while an fsync is in flight)")
	replFactor := flag.Int("repl-factor", 1, "run the catalog as an N-way replica group in this process; replica 0 serves -addr, the rest print their addresses at startup")
	replAck := flag.String("repl-ack", "majority", "replication acknowledgement quorum: majority or all")
	debugAddr := flag.String("debug-addr", "", "HTTP address for /metrics, /healthz and /debug/vars (default: disabled)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown bound: in-flight statements get this long to finish on SIGTERM/SIGINT")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	if *version {
		fmt.Println("dpfs-meta", obs.Build().String())
		return
	}
	var ack metarepl.Ack
	switch *replAck {
	case "majority":
		ack = metarepl.AckMajority
	case "all":
		ack = metarepl.AckAll
	default:
		fatal(fmt.Errorf("unknown -repl-ack %q (want majority or all)", *replAck))
	}

	dbOpts := metadb.Options{
		Dir: *dir, Sync: *sync,
		GroupCommit: *groupCommit, GroupCommitWait: *groupWait,
	}
	if *replFactor > 1 {
		runGroup(*replFactor, ack, *addr, dbOpts, *debugAddr, *drainTimeout)
		return
	}

	db, err := metadb.Open(dbOpts)
	if err != nil {
		fatal(err)
	}
	defer db.Close()

	// Initialize the DPFS schema so freshly-pointed clients find the
	// four tables of Fig. 10.
	cat := meta.NewCatalog(db.Session())
	if err := cat.Init(); err != nil {
		fatal(err)
	}

	srv, err := mdbnet.Listen(db, *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dpfs-meta: serving DPFS metadata on %s (dir=%q sync=%v)\n", srv.Addr(), *dir, *sync)

	if *debugAddr != "" {
		regs := map[string]*obs.Registry{"db": db.Metrics(), "net": srv.Metrics()}
		stopDebug := startDebug(*debugAddr, regs, srv.Traces(), func() obs.Health {
			return obs.Health{Status: "ok", Detail: map[string]any{
				"addr":   srv.Addr(),
				"dir":    *dir,
				"sync":   *sync,
				"tables": len(db.TableNames()),
			}}
		})
		defer stopDebug()
	}

	drain(srv, *drainTimeout)
}

// runGroup runs the catalog as an n-way replica group inside this
// process: shared-nothing databases, one SQL server per replica
// (followers reject with a redirect to the primary), and the metarepl
// shipping stream between them. Replica 0 bootstraps fresh groups; a
// restarted durable group elects its primary instead.
func runGroup(n int, ack metarepl.Ack, addr string, dbOpts metadb.Options, debugAddr string, drainTimeout time.Duration) {
	liss := make([]*mdbnet.ReplListener, n)
	peers := make([]string, n)
	for j := range liss {
		lis, err := mdbnet.ListenRepl("")
		if err != nil {
			fatal(err)
		}
		liss[j] = lis
		peers[j] = lis.Addr()
	}
	dbs := make([]*metadb.DB, n)
	srvs := make([]*mdbnet.Server, n)
	sqlAddrs := make([]string, n)
	for j := 0; j < n; j++ {
		opts := dbOpts
		if opts.Dir != "" && j > 0 {
			opts.Dir = fmt.Sprintf("%s-r%d", dbOpts.Dir, j)
		}
		db, err := metadb.Open(opts)
		if err != nil {
			fatal(err)
		}
		dbs[j] = db
		a := addr
		if j > 0 {
			a = "" // followers pick ephemeral ports, printed below
		}
		srv, err := mdbnet.Listen(db, a)
		if err != nil {
			fatal(err)
		}
		srvs[j] = srv
		sqlAddrs[j] = srv.Addr()
	}
	reps := make([]*metarepl.Replica, n)
	for j := 0; j < n; j++ {
		rep, err := metarepl.New(metarepl.Config{
			Name: "meta", ID: j, Peers: peers, SQLAddrs: sqlAddrs,
			DB: dbs[j], Listener: liss[j], Ack: ack,
		})
		if err != nil {
			fatal(err)
		}
		reps[j] = rep
		srvs[j].SetGate(rep.Gate())
	}
	fresh := false
	if epoch, _ := dbs[0].ReplEpoch(); epoch == 0 {
		fresh = true
		if err := reps[0].Bootstrap(); err != nil {
			fatal(err)
		}
	}
	for _, rep := range reps {
		rep.Start()
	}
	if fresh {
		// The schema commit itself flows through quorum-acked shipping.
		// On a durable restart the schema already exists and the elected
		// primary may not be replica 0, so only fresh groups run Init.
		if err := meta.NewCatalog(dbs[0].Session()).Init(); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("dpfs-meta: serving DPFS metadata on %s as a %d-way replica group (dir=%q sync=%v ack=%s)\n",
		srvs[0].Addr(), n, dbOpts.Dir, dbOpts.Sync, ackName(ack))
	for j := 1; j < n; j++ {
		fmt.Printf("dpfs-meta: replica %d on %s (replication %s)\n", j, sqlAddrs[j], peers[j])
	}
	fmt.Printf("dpfs-meta: clients: -meta-addrs '%s;'\n", strings.Join(sqlAddrs, ","))

	if debugAddr != "" {
		regs := map[string]*obs.Registry{"db": dbs[0].Metrics(), "net": srvs[0].Metrics()}
		for j, rep := range reps {
			regs[fmt.Sprintf("repl%d", j)] = rep.Metrics()
		}
		stopDebug := startDebug(debugAddr, regs, srvs[0].Traces(), func() obs.Health {
			primary := -1
			for j, rep := range reps {
				if rep.Role() == metarepl.Primary {
					primary = j
				}
			}
			epoch, _ := reps[0].Epoch()
			return obs.Health{Status: "ok", Detail: map[string]any{
				"addr":     srvs[0].Addr(),
				"replicas": n,
				"primary":  primary,
				"epoch":    epoch,
			}}
		})
		defer stopDebug()
	}

	drain(srvs[0], drainTimeout)
	for _, rep := range reps {
		rep.Close()
	}
	for j := 1; j < n; j++ {
		srvs[j].Close()
	}
	for _, db := range dbs {
		db.Close()
	}
}

func ackName(ack metarepl.Ack) string {
	if ack == metarepl.AckAll {
		return "all"
	}
	return "majority"
}

// startDebug brings up the HTTP debug endpoint and returns its closer.
func startDebug(addr string, regs map[string]*obs.Registry, traces *obs.TraceLog, health func() obs.Health) func() {
	obs.PublishExpvar("dpfs", regs)
	h := obs.NewHandler(obs.HandlerConfig{
		Regs:   regs,
		Health: health,
		Traces: traces,
		Pprof:  true,
	})
	dbg, err := obs.StartDebug(addr, h)
	if err != nil {
		fatal(fmt.Errorf("debug server: %w", err))
	}
	fmt.Printf("dpfs-meta: debug endpoints on http://%s/metrics\n", dbg.Addr())
	return func() { dbg.Close() }
}

// drain waits for a shutdown signal, then gives in-flight statements
// the drain timeout to finish.
func drain(srv *mdbnet.Server, drainTimeout time.Duration) {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("dpfs-meta: draining (up to %v; signal again to force)\n", drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	go func() {
		<-sig
		cancel()
	}()
	err := srv.Shutdown(ctx)
	cancel()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpfs-meta: forced shutdown:", err)
		os.Exit(1)
	}
	fmt.Println("dpfs-meta: drained")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpfs-meta:", err)
	os.Exit(1)
}
