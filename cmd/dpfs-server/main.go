// Command dpfs-server runs one DPFS I/O server (Section 2): it stores
// subfiles under -root, serves brick requests over TCP, and registers
// itself in the metadata database so clients can find it. An optional
// -class attaches the netsim performance model of one of the paper's
// three storage classes, for single-machine experiments.
//
// Usage:
//
//	dpfs-server -addr :7801 -root /data/dpfs -name io0 -meta 127.0.0.1:7700
//	dpfs-server -addr :7802 -root /tmp/s2 -name io1 -meta ... -class class3
//
// With -debug-addr the server also serves /metrics (Prometheus text),
// /healthz, /debug/vars (JSON), /debug/trace, /debug/events,
// /debug/gossip and /debug/pprof over HTTP for scraping and debugging.
// With -gossip the server joins the peer-to-peer health plane on its
// data port (DESIGN.md §14), seeded from the catalog's server table.
package main

import (
	"context"
	"flag"
	"fmt"
	"hash/fnv"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dpfs"
	"dpfs/internal/fault"
	"dpfs/internal/gossip"
	"dpfs/internal/meta"
	"dpfs/internal/metadb/mdbnet"
	"dpfs/internal/netsim"
	"dpfs/internal/obs"
	"dpfs/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "TCP listen address")
	root := flag.String("root", "", "directory for subfile storage (required)")
	name := flag.String("name", "", "server name in the catalog (default: the listen address)")
	metaAddr := flag.String("meta", "", "metadata server address to register with (optional)")
	metaAddrs := flag.String("meta-addrs", "", "catalog shard addresses to register with (overrides -meta; the server is recorded on every shard); semicolons separate shards, commas a shard's replicas")
	className := flag.String("class", "", "simulated storage class: class1, class2 or class3 (default: native speed)")
	capacity := flag.Int64("capacity", 1<<30, "advertised capacity in bytes")
	advertise := flag.String("advertise", "", "address to advertise in the catalog (default: the listen address)")
	debugAddr := flag.String("debug-addr", "", "HTTP address for /metrics, /healthz and /debug/vars (default: disabled)")
	faultSpec := flag.String("fault-spec", "", "inject faults on accepted connections, e.g. 'drop:prob=0.01;delay:prob=0.05,ms=2' (see internal/fault)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for probabilistic fault rules (deterministic per seed)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown bound: in-flight requests get this long to finish on SIGTERM/SIGINT")
	slowMS := flag.Int64("slow-request-ms", 0, "log requests slower than this to the event log (with their trace when traced; 0 = off)")
	wireV2 := flag.Bool("wire-v2", false, "speak the tagged-frame wire protocol on outbound repair pulls (inbound is auto-detected per connection)")
	gossipOn := flag.Bool("gossip", false, "run the gossip health plane on the data port: membership and health spread peer-to-peer and RPC responses piggyback server-table deltas (DESIGN.md §14)")
	gossipInterval := flag.Duration("gossip-interval", time.Second, "gossip round period")
	gossipFanout := flag.Int("gossip-fanout", 0, "gossip exchange fan-out per round (0 derives it from the registered server count)")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	if *version {
		fmt.Println("dpfs-server", obs.Build().String())
		return
	}
	if *root == "" {
		fatal(fmt.Errorf("-root is required"))
	}
	var model *netsim.Model
	perf := 1
	if *className != "" {
		params, ok := netsim.ClassByName(*className)
		if !ok {
			fatal(fmt.Errorf("unknown class %q", *className))
		}
		model = netsim.New(params)
		// Normalize against class 1 with the paper's 512 KiB brick.
		perf = netsim.NormalizedPerf([]netsim.Params{netsim.Class1(), params}, 512<<10)[1]
	}

	lisAddr := *addr
	if lisAddr == "" {
		lisAddr = "127.0.0.1:0"
	}
	lis, err := net.Listen("tcp", lisAddr)
	if err != nil {
		fatal(err)
	}
	if *faultSpec != "" {
		inj, err := fault.Parse(*faultSpec, *faultSeed)
		if err != nil {
			fatal(err)
		}
		lis = inj.Listener(lis, *name)
		fmt.Printf("dpfs-server: injecting faults %q (seed %d)\n", *faultSpec, *faultSeed)
	}
	srv, err := server.New(server.Config{
		Root: *root, Model: model, Name: *name,
		SlowRequest: time.Duration(*slowMS) * time.Millisecond,
		WireV2:      *wireV2,
	}, lis)
	if err != nil {
		fatal(err)
	}
	serverName := *name
	if serverName == "" {
		serverName = srv.Addr()
	}
	adv := *advertise
	if adv == "" {
		adv = srv.Addr()
	}

	regAddrs := ""
	if *metaAddrs != "" {
		regAddrs = *metaAddrs
	} else if *metaAddr != "" {
		regAddrs = *metaAddr
	}
	registered := false
	var gossipSeeds []string
	if regAddrs != "" {
		// Register with every catalog shard: any shard must be able to
		// resolve this server for the files it homes. Replicated shards
		// get a failover connection that follows the group's primary.
		var clis []interface{ Close() error }
		shards := make([]meta.Router, 0, 1)
		for _, group := range dpfs.ParseMetaAddrs(regAddrs) {
			var (
				x   meta.Execer
				err error
			)
			if len(group) == 1 {
				x, err = mdbnet.Dial(group[0])
			} else {
				x, err = mdbnet.DialGroup(group, nil)
			}
			if err != nil {
				fatal(fmt.Errorf("register: %w", err))
			}
			clis = append(clis, x.(interface{ Close() error }))
			shards = append(shards, meta.NewCatalog(x))
		}
		if len(shards) == 0 {
			fatal(fmt.Errorf("register: no catalog addresses in %q", regAddrs))
		}
		var cat meta.Router = shards[0]
		if len(shards) > 1 {
			cat = meta.NewShardRouter(shards...)
		}
		if err := cat.Init(); err != nil {
			fatal(fmt.Errorf("register: %w", err))
		}
		err = cat.RegisterServer(meta.ServerInfo{
			Name: serverName, Capacity: *capacity, Performance: perf, Addr: adv,
		})
		if err == nil && *gossipOn {
			// The registered server table doubles as the gossip seed
			// list: every already-known peer bootstraps this node's view.
			if infos, serr := cat.Servers(); serr == nil {
				for _, si := range infos {
					if si.Addr != adv {
						gossipSeeds = append(gossipSeeds, si.Addr)
					}
				}
			}
		}
		for _, cli := range clis {
			cli.Close()
		}
		if err != nil {
			fatal(fmt.Errorf("register: %w", err))
		}
		registered = true
		fmt.Printf("dpfs-server: registered as %q (perf %d) with %s\n", serverName, perf, regAddrs)
	}
	fmt.Printf("dpfs-server: %q serving %s on %s\n", serverName, *root, srv.Addr())

	var gnode *gossip.Node
	if *gossipOn {
		params := gossip.DefaultParams(len(gossipSeeds) + 1)
		if *gossipFanout > 0 {
			params.L1 = *gossipFanout
			params.L2 = 2 * *gossipFanout
		}
		h := fnv.New64a()
		_, _ = h.Write([]byte(serverName + "|" + adv))
		gnode, err = gossip.NewNode(gossip.Config{
			Self:      gossip.Record{Addr: adv, Name: serverName, State: gossip.StateAlive},
			Seeds:     gossipSeeds,
			Seed:      int64(h.Sum64()),
			Params:    params,
			Transport: &gossip.NetTransport{},
			Metrics:   srv.Metrics(),
			Events:    obs.Events(),
			SelfUpdate: func(rec *gossip.Record) {
				rec.Gen = srv.GenHighWater()
				hs := srv.Health()
				rec.DiskErrors = hs.DiskErrors
				rec.CopyPeerErrors = hs.CopyPeerErrors
			},
		})
		if err != nil {
			fatal(fmt.Errorf("gossip: %w", err))
		}
		srv.SetGossip(gnode)
		gctx, gcancel := context.WithCancel(context.Background())
		defer gcancel()
		go gnode.Run(gctx, *gossipInterval)
		fmt.Printf("dpfs-server: gossip on (interval %v, fanout %d, %d seeds)\n",
			*gossipInterval, params.L1, len(gossipSeeds))
	}

	if *debugAddr != "" {
		regs := map[string]*obs.Registry{"server": srv.Metrics()}
		obs.PublishExpvar("dpfs", regs)
		h := obs.NewHandler(obs.HandlerConfig{
			Regs: regs,
			Health: func() obs.Health {
				hs := srv.Health()
				return obs.Health{Status: hs.Status, Detail: map[string]any{
					"name":             serverName,
					"addr":             srv.Addr(),
					"root":             *root,
					"meta":             regAddrs,
					"registered":       registered,
					"disk_errors":      hs.DiskErrors,
					"copy_peer_errors": hs.CopyPeerErrors,
				}}
			},
			Traces: srv.Traces(),
			Pprof:  true,
			Gossip: gossipView(gnode),
		})
		dbg, err := obs.StartDebug(*debugAddr, h)
		if err != nil {
			fatal(fmt.Errorf("debug server: %w", err))
		}
		defer dbg.Close()
		fmt.Printf("dpfs-server: debug endpoints on http://%s/metrics\n", dbg.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("dpfs-server: draining (up to %v; signal again to force)\n", *drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	go func() {
		<-sig
		cancel()
	}()
	err = srv.Shutdown(ctx)
	cancel()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpfs-server: forced shutdown:", err)
		os.Exit(1)
	}
	fmt.Println("dpfs-server: drained")
}

// gossipView adapts a gossip node into the /debug/gossip callback
// (nil node -> nil callback, so the endpoint reports gossip off).
func gossipView(n *gossip.Node) func() any {
	if n == nil {
		return nil
	}
	return func() any {
		return map[string]any{
			"enabled": true,
			"self":    n.Self(),
			"rounds":  n.Rounds(),
			"version": n.Version(),
			"members": n.Snapshot(),
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpfs-server:", err)
	os.Exit(1)
}
