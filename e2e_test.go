package dpfs_test

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestEndToEndProcesses builds the real binaries and runs a complete
// multi-process deployment: one dpfs-meta, two dpfs-server processes,
// and dpfs-sh driving the Section 7 user interface over TCP — the
// closest this repo gets to the paper's actual operational setup.
func TestEndToEndProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and launches subprocesses")
	}
	bin := t.TempDir()
	build := func(name string) string {
		out := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, msg)
		}
		return out
	}
	metaBin := build("dpfs-meta")
	srvBin := build("dpfs-server")
	shBin := build("dpfs-sh")

	freePort := func() string {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		return l.Addr().String()
	}

	work := t.TempDir()
	metaAddr := freePort()
	procs := []*exec.Cmd{}
	start := func(path string, args ...string) *exec.Cmd {
		cmd := exec.Command(path, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start %s: %v", path, err)
		}
		procs = append(procs, cmd)
		return cmd
	}
	t.Cleanup(func() {
		for _, p := range procs {
			if p.Process != nil {
				p.Process.Kill()
				p.Wait()
			}
		}
	})

	start(metaBin, "-addr", metaAddr, "-dir", filepath.Join(work, "meta"))
	waitTCP(t, metaAddr)

	srv1 := freePort()
	srv2 := freePort()
	start(srvBin, "-addr", srv1, "-root", filepath.Join(work, "s1"), "-name", "io-a", "-meta", metaAddr)
	start(srvBin, "-addr", srv2, "-root", filepath.Join(work, "s2"), "-name", "io-b", "-meta", metaAddr, "-class", "class3")
	waitTCP(t, srv1)
	waitTCP(t, srv2)
	// Registration happens at server startup; give the slower path a
	// moment before the shell asks for the server list.
	waitShell(t, shBin, metaAddr, "df", "io-b")

	sh := func(cmd string) string {
		out, err := exec.Command(shBin, "-meta", metaAddr, "-c", cmd).CombinedOutput()
		if err != nil {
			t.Fatalf("dpfs-sh -c %q: %v\n%s", cmd, err, out)
		}
		return string(out)
	}

	// df sees both servers with class-calibrated performance numbers.
	df := sh("df")
	if !strings.Contains(df, "io-a") || !strings.Contains(df, "io-b") {
		t.Fatalf("df = %q", df)
	}

	// Import a local file, stat it, copy it, read it back out.
	payload := bytes.Repeat([]byte("end-to-end!"), 20000)
	local := filepath.Join(work, "in.bin")
	if err := os.WriteFile(local, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	sh("mkdir /data")
	out := sh(fmt.Sprintf("cp local:%s /data/blob", local))
	if !strings.Contains(out, "imported 220000 bytes") {
		t.Fatalf("import: %q", out)
	}
	stat := sh("stat /data/blob")
	if !strings.Contains(stat, "size:      220000 bytes") {
		t.Fatalf("stat: %q", stat)
	}
	sh("mv /data/blob /data/blob2")
	exported := filepath.Join(work, "out.bin")
	sh(fmt.Sprintf("cp /data/blob2 local:%s", exported))
	got, err := os.ReadFile(exported)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("roundtrip through real processes corrupted data")
	}

	// Subfiles really live under both server roots.
	foundA := subfileExists(t, filepath.Join(work, "s1"))
	foundB := subfileExists(t, filepath.Join(work, "s2"))
	if !foundA || !foundB {
		t.Fatalf("subfiles on servers: a=%v b=%v (file should stripe across both)", foundA, foundB)
	}

	// du accounts the bricks.
	du := sh("du")
	if !strings.Contains(du, "io-a") {
		t.Fatalf("du: %q", du)
	}
	sh("rm /data/blob2")
	if out := sh("ls /data"); strings.Contains(out, "blob2") {
		t.Fatalf("ls after rm: %q", out)
	}
}

// waitTCP blocks until the address accepts connections.
func waitTCP(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			conn.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("server at %s never came up", addr)
}

// waitShell retries a shell command until its output contains want.
func waitShell(t *testing.T, shBin, metaAddr, cmd, want string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	var last []byte
	for time.Now().Before(deadline) {
		out, err := exec.Command(shBin, "-meta", metaAddr, "-c", cmd).CombinedOutput()
		last = out
		if err == nil && strings.Contains(string(out), want) {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("shell %q never showed %q; last output: %s", cmd, want, last)
}

// subfileExists reports whether any regular file exists under dir.
func subfileExists(t *testing.T, dir string) bool {
	t.Helper()
	found := false
	_ = filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err == nil && info.Mode().IsRegular() && info.Size() > 0 {
			found = true
		}
		return nil
	})
	return found
}
