// Benchmarks regenerating every figure of the paper's evaluation
// (Section 8) plus the ablations of DESIGN.md and micro-benchmarks of
// the substrates. Each figure bar is a sub-benchmark reporting MB/s;
// cmd/dpfs-bench prints the same data as tables.
//
// The array is scaled down from the paper's 32K x 32K (see
// EXPERIMENTS.md for the calibration argument); ratios between bars,
// not absolute MB/s, carry the paper's claims.
package dpfs_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"dpfs/internal/bench"
	"dpfs/internal/core"
	"dpfs/internal/datatype"
	"dpfs/internal/metadb"
	"dpfs/internal/netsim"
	"dpfs/internal/server"
	"dpfs/internal/stripe"
	"dpfs/internal/wire"
)

// benchConfig scales the figure benchmarks down so the full -bench=.
// run finishes in minutes.
func benchConfig(b *testing.B) bench.Config {
	return bench.Config{N: 256, Dir: b.TempDir(), Reps: 1}
}

func reportLevel(b *testing.B, np, io int, class netsim.Params, lc bench.LevelCase) {
	b.Helper()
	cfg := benchConfig(b)
	ctx := context.Background()
	var mbps float64
	for i := 0; i < b.N; i++ {
		m, err := bench.RunLevelCase(ctx, cfg, np, io, class, lc)
		if err != nil {
			b.Fatal(err)
		}
		mbps += m.MBps
	}
	b.ReportMetric(mbps/float64(b.N), "MB/s")
	b.ReportMetric(0, "ns/op")
}

func reportAlgo(b *testing.B, np, io int, algo string, ac bench.AlgoCase) {
	b.Helper()
	cfg := benchConfig(b)
	ctx := context.Background()
	var mbps float64
	for i := 0; i < b.N; i++ {
		m, err := bench.RunAlgoCase(ctx, cfg, algo, ac, np, io)
		if err != nil {
			b.Fatal(err)
		}
		mbps += m.MBps
	}
	b.ReportMetric(mbps/float64(b.N), "MB/s")
	b.ReportMetric(0, "ns/op")
}

// BenchmarkFig11 regenerates Fig. 11: I/O bandwidth of the six file
// level variants on each storage class, 8 compute nodes, 4 I/O nodes.
func BenchmarkFig11(b *testing.B) {
	for _, class := range []netsim.Params{netsim.Class1(), netsim.Class2(), netsim.Class3()} {
		for _, lc := range bench.LevelCases() {
			b.Run(class.Name+"/"+lc.Label, func(b *testing.B) {
				reportLevel(b, 8, 4, class, lc)
			})
		}
	}
}

// BenchmarkFig12 regenerates Fig. 12: the same comparison at 16
// compute nodes and 8 I/O nodes.
func BenchmarkFig12(b *testing.B) {
	for _, class := range []netsim.Params{netsim.Class1(), netsim.Class2(), netsim.Class3()} {
		for _, lc := range bench.LevelCases() {
			b.Run(class.Name+"/"+lc.Label, func(b *testing.B) {
				reportLevel(b, 16, 8, class, lc)
			})
		}
	}
}

// BenchmarkFig13 regenerates Fig. 13: round-robin vs greedy placement
// on half class-1 / half class-3 storage, 8 compute nodes, 8 I/O
// nodes.
func BenchmarkFig13(b *testing.B) {
	for _, algo := range []string{"round-robin", "greedy"} {
		for _, ac := range bench.AlgoCases() {
			b.Run(algo+"/"+ac.Label, func(b *testing.B) {
				reportAlgo(b, 8, 8, algo, ac)
			})
		}
	}
}

// BenchmarkFig14 regenerates Fig. 14: the same comparison at 16
// compute nodes and 16 I/O nodes.
func BenchmarkFig14(b *testing.B) {
	for _, algo := range []string{"round-robin", "greedy"} {
		for _, ac := range bench.AlgoCases() {
			b.Run(algo+"/"+ac.Label, func(b *testing.B) {
				reportAlgo(b, 16, 16, algo, ac)
			})
		}
	}
}

// BenchmarkAblationStagger isolates the staggered scheduling half of
// request combination (Sec. 4.2).
func BenchmarkAblationStagger(b *testing.B) {
	runAblation(b, "stagger")
}

// BenchmarkAblationBrickShape compares tile aspect ratios under column
// access.
func BenchmarkAblationBrickShape(b *testing.B) {
	runAblation(b, "shape")
}

// BenchmarkAblationServerCount sweeps I/O node count at fixed compute
// nodes.
func BenchmarkAblationServerCount(b *testing.B) {
	runAblation(b, "servers")
}

// BenchmarkAblationExactReads contrasts whole-brick fetching with
// exact extents.
func BenchmarkAblationExactReads(b *testing.B) {
	runAblation(b, "exact")
}

// BenchmarkAblationCollective contrasts independent with two-phase
// collective I/O under an interleaved row pattern.
func BenchmarkAblationCollective(b *testing.B) {
	runAblation(b, "collective")
}

// BenchmarkDispatch contrasts the paper's sequential per-server sweep
// with parallel dispatch on class-1 shaped servers
// (scripts/bench_smoke.sh runs this one as the quick regression gate).
func BenchmarkDispatch(b *testing.B) {
	runAblation(b, "parallel")
}

func runAblation(b *testing.B, name string) {
	b.Helper()
	cfg := benchConfig(b)
	ctx := context.Background()
	// Discover the variant labels once.
	first, err := bench.Ablation(ctx, cfg, name)
	if err != nil {
		b.Fatal(err)
	}
	for vi := range first {
		vi := vi
		b.Run(first[vi].Label, func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				ms, err := bench.Ablation(ctx, benchConfig(b), name)
				if err != nil {
					b.Fatal(err)
				}
				mbps += ms[vi].MBps
			}
			b.ReportMetric(mbps/float64(b.N), "MB/s")
			b.ReportMetric(0, "ns/op")
		})
	}
}

// --- substrate micro-benchmarks ---------------------------------------

// BenchmarkPlanSection measures the pure striping math for the three
// levels (no I/O): the client-side cost of turning a section into a
// brick plan.
func BenchmarkPlanSection(b *testing.B) {
	geoms := map[string]*stripe.Geometry{
		"linear":   {Level: stripe.LevelLinear, ElemSize: 8, Dims: []int64{4096, 4096}, BrickBytes: 512 << 10},
		"multidim": {Level: stripe.LevelMultidim, ElemSize: 8, Dims: []int64{4096, 4096}, Tile: []int64{256, 256}},
		"array": {Level: stripe.LevelArray, ElemSize: 8, Dims: []int64{4096, 4096},
			Pattern: []stripe.Dist{stripe.DistStar, stripe.DistBlock}, Grid: []int64{1, 8}},
	}
	sec := stripe.NewSection([]int64{0, 512}, []int64{4096, 512})
	for name, g := range geoms {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := g.PlanSection(sec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGreedyAssign measures the placement algorithm itself.
func BenchmarkGreedyAssign(b *testing.B) {
	perf := []int{1, 1, 1, 1, 3, 3, 3, 3}
	g := stripe.Greedy{Perf: perf}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Assign(16384, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDatatypePack measures derived-datatype packing of a strided
// column out of a 1 MiB matrix.
func BenchmarkDatatypePack(b *testing.B) {
	t := datatype.Subarray{ElemSize: 8, Dims: []int64{512, 256}, Start: []int64{0, 0}, Count: []int64{512, 32}}
	mem := make([]byte, t.Extent())
	out := make([]byte, t.Size())
	b.SetBytes(t.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := datatype.PackInto(t, mem, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMetaDB measures the catalog substrate: point inserts and
// primary-key lookups, the operations on DPFS's open/create path.
func BenchmarkMetaDB(b *testing.B) {
	b.Run("insert", func(b *testing.B) {
		db := metadb.Memory()
		defer db.Close()
		s := db.Session()
		if _, err := s.Exec(`CREATE TABLE t (id INT PRIMARY KEY, name TEXT, size INT)`); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Exec(fmt.Sprintf(`INSERT INTO t VALUES (%d, 'file%d', %d)`, i, i, i*4096)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pk-lookup", func(b *testing.B) {
		db := metadb.Memory()
		defer db.Close()
		s := db.Session()
		if _, err := s.Exec(`CREATE TABLE t (id INT PRIMARY KEY, name TEXT)`); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 10000; i++ {
			if _, err := s.Exec(fmt.Sprintf(`INSERT INTO t VALUES (%d, 'file%d')`, i, i)); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := s.Exec(fmt.Sprintf(`SELECT name FROM t WHERE id = %d`, i%10000))
			if err != nil || len(res.Rows) != 1 {
				b.Fatalf("lookup failed: %v", err)
			}
		}
	})
}

// BenchmarkCatalogOpen measures the full DPFS open path (metadata
// lookup + distribution reconstruction) against a live cluster,
// demonstrating that database overhead sits off the data path.
func BenchmarkCatalogOpen(b *testing.B) {
	cfg := benchConfig(b)
	ctx := context.Background()
	_ = ctx
	c, fsys := startBenchCluster(b, cfg)
	defer c()
	f, err := fsys.Create("/bench-open", 8, []int64{512, 512},
		core.Hint{Level: stripe.LevelMultidim, Tile: []int64{64, 64}})
	if err != nil {
		b.Fatal(err)
	}
	f.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := fsys.Open("/bench-open")
		if err != nil {
			b.Fatal(err)
		}
		f.Close()
	}
}

// BenchmarkWireEncode measures the message codec with a combined
// 16-extent 512 KiB write frame.
func BenchmarkWireEncode(b *testing.B) {
	req := &wire.Request{Op: wire.OpWrite, Path: "/bench/file"}
	for i := 0; i < 16; i++ {
		req.Extents = append(req.Extents, wire.Extent{Off: int64(i) << 16, Len: 32 << 10})
	}
	req.Data = make([]byte, 512<<10)
	var buf bytes.Buffer
	b.SetBytes(512 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := wire.WriteRequest(&buf, req); err != nil {
			b.Fatal(err)
		}
		if _, err := wire.ReadRequest(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerIO measures the raw unshaped I/O server over loopback
// TCP: the substrate floor under every figure.
func BenchmarkServerIO(b *testing.B) {
	srv, err := server.Listen(server.Config{Root: b.TempDir(), Name: "bench"}, "")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cli := server.NewClient(srv.Addr())
	defer cli.Close()
	ctx := context.Background()
	const chunk = 256 << 10
	data := make([]byte, chunk)

	b.Run("write", func(b *testing.B) {
		b.SetBytes(chunk)
		for i := 0; i < b.N; i++ {
			if _, err := cli.Do(ctx, &wire.Request{Op: wire.OpWrite, Path: "f",
				Extents: []wire.Extent{{Off: int64(i%64) * chunk, Len: chunk}}, Data: data}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("read", func(b *testing.B) {
		b.SetBytes(chunk)
		for i := 0; i < b.N; i++ {
			if _, err := cli.Do(ctx, &wire.Request{Op: wire.OpRead, Path: "f",
				Extents: []wire.Extent{{Off: int64(i%64) * chunk, Len: chunk}}}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
