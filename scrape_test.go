package dpfs_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dpfs"
	"dpfs/internal/cluster"
	"dpfs/internal/obs"
)

// TestConcurrentScrape hammers /metrics, /debug/trace and
// /debug/events from many goroutines while a traced workload mutates
// the same registry, trace ring and event log underneath them. Run
// under -race (scripts/check.sh does) this is the data-race gate for
// the whole debug surface; every /metrics response must also be
// lint-clean Prometheus text mid-flight.
func TestConcurrentScrape(t *testing.T) {
	const (
		scrapers = 4
		size     = 8 * 4096
	)
	c, err := cluster.Start(cluster.Config{Servers: cluster.Uniform(2), Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	events := obs.NewEventLog(128)
	client, err := dpfs.Connect(c.MetaSrv.Addr(), 0, dpfs.Options{
		Combine: true, Events: events, SlowRequest: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	traces := client.Engine().EnableTracing(32)

	srv := httptest.NewServer(obs.NewHandler(obs.HandlerConfig{
		Regs:   map[string]*obs.Registry{"client": client.Engine().Metrics()},
		Traces: traces,
		Events: events,
	}))
	defer srv.Close()

	f, err := client.Create("/scrape.bin", 1, []int64{size},
		dpfs.Hint{Level: dpfs.Linear, BrickBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data := make([]byte, size)

	done := make(chan struct{})
	var wg sync.WaitGroup
	// The workload: writes and reads that record spans, latency
	// histograms and (SlowRequest: 1ns) a slow_request event per call.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			if err := f.WriteAt(ctx, data, 0); err != nil {
				t.Error(err)
				return
			}
			if err := f.ReadAt(ctx, data, 0); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// The scrapers.
	errs := make(chan error, scrapers)
	for s := 0; s < scrapers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			paths := []string{"/metrics", "/debug/trace", "/debug/events",
				"/debug/events?type=slow_request&n=5"}
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				url := srv.URL + paths[(s+i)%len(paths)]
				resp, err := http.Get(url)
				if err != nil {
					errs <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("GET %s: status %d err %v", url, resp.StatusCode, err)
					return
				}
				if paths[(s+i)%len(paths)] == "/metrics" {
					if issues := obs.LintPrometheus(bytes.NewReader(body)); len(issues) != 0 {
						errs <- fmt.Errorf("mid-flight /metrics lint: %v", issues)
						return
					}
				}
			}
		}(s)
	}

	time.Sleep(500 * time.Millisecond)
	close(done)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if traces.Len() == 0 {
		t.Fatal("workload recorded no traces")
	}
	if len(events.ByType(obs.EventSlowRequest)) == 0 {
		t.Fatal("SlowRequest=1ns workload emitted no slow_request events")
	}
}
