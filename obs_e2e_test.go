package dpfs_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dpfs"
	"dpfs/internal/cluster"
	"dpfs/internal/collective"
	"dpfs/internal/core"
	"dpfs/internal/obs"
	"dpfs/internal/server"
	"dpfs/internal/stripe"
	"dpfs/internal/wire"
)

// TestDebugEndpointE2E boots real dpfs-meta and dpfs-server processes
// with -debug-addr, performs a striped combined write and read through
// the public client, and checks that each daemon reports the traffic:
// JSON registry snapshots on /debug/vars, lint-clean Prometheus text
// on /metrics, and build info on /healthz.
func TestDebugEndpointE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and launches subprocesses")
	}
	bin := t.TempDir()
	build := func(name string) string {
		out := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, msg)
		}
		return out
	}
	metaBin := build("dpfs-meta")
	srvBin := build("dpfs-server")

	work := t.TempDir()
	metaAddr := freePortAddr(t)
	metaDebug := freePortAddr(t)
	procs := []*exec.Cmd{}
	start := func(path string, args ...string) {
		cmd := exec.Command(path, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start %s: %v", path, err)
		}
		procs = append(procs, cmd)
	}
	t.Cleanup(func() {
		for _, p := range procs {
			if p.Process != nil {
				p.Process.Kill()
				p.Wait()
			}
		}
	})

	start(metaBin, "-addr", metaAddr, "-dir", filepath.Join(work, "meta"), "-debug-addr", metaDebug)
	waitTCP(t, metaAddr)

	srvAddrs := []string{freePortAddr(t), freePortAddr(t)}
	srvDebug := []string{freePortAddr(t), freePortAddr(t)}
	for i := range srvAddrs {
		start(srvBin, "-addr", srvAddrs[i], "-root", filepath.Join(work, fmt.Sprintf("s%d", i)),
			"-name", fmt.Sprintf("io-%d", i), "-meta", metaAddr,
			"-class", "class1", "-debug-addr", srvDebug[i])
	}
	for _, a := range append(append([]string{}, srvAddrs...), srvDebug...) {
		waitTCP(t, a)
	}
	waitTCP(t, metaDebug)

	// Wait for both registrations to land in the catalog.
	waitRegistered := func() {
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			c, err := dpfs.Connect(metaAddr, 0, dpfs.Options{})
			if err == nil {
				servers, err := c.Servers()
				c.Close()
				if err == nil && len(servers) == 2 {
					return
				}
			}
			time.Sleep(100 * time.Millisecond)
		}
		t.Fatal("servers never registered")
	}
	waitRegistered()

	client, err := dpfs.Connect(metaAddr, 0, dpfs.Options{Combine: true, Stagger: true})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	// 8 bricks round-robin over the 2 servers: one combined request per
	// server for the write, one for the read.
	f, err := client.Create("/metrics.bin", 1, []int64{8 * 4096},
		dpfs.Hint{Level: dpfs.Linear, BrickBytes: 4096, Placement: dpfs.RoundRobin{}})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data := make([]byte, 8*4096)
	for i := range data {
		data[i] = byte(i)
	}
	if err := f.WriteAt(ctx, data, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.ReadAt(ctx, make([]byte, len(data)), 0); err != nil {
		t.Fatal(err)
	}

	getJSON := func(url string, into any) int {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", url, err)
		}
		return resp.StatusCode
	}
	// /debug/vars is the standard expvar map; the registries live under
	// the "dpfs" key (see obs.PublishExpvar).
	type expvars struct {
		Dpfs map[string]obs.Snapshot `json:"dpfs"`
	}
	getProm := func(url string) string {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", url, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		if issues := obs.LintPrometheus(bytes.NewReader(body)); len(issues) != 0 {
			t.Fatalf("GET %s: prometheus lint: %v", url, issues)
		}
		return string(body)
	}

	for i, dbg := range srvDebug {
		var ev expvars
		if code := getJSON("http://"+dbg+"/debug/vars", &ev); code != http.StatusOK {
			t.Fatalf("server %d /debug/vars status %d", i, code)
		}
		s, ok := ev.Dpfs["server"]
		if !ok {
			t.Fatalf("server %d /debug/vars missing server group: %v", i, ev.Dpfs)
		}
		// One combined write and one combined read reached each server.
		if got := s.Histograms[server.OpMetric(wire.OpWrite)].Count; got != 1 {
			t.Fatalf("server %d op_write_us count = %d, want 1 (combined)", i, got)
		}
		if got := s.Histograms[server.OpMetric(wire.OpRead)].Count; got != 1 {
			t.Fatalf("server %d op_read_us count = %d, want 1 (combined)", i, got)
		}
		// class1 charges >= 800us per request, so the handler latency
		// histogram cannot be empty or all-zero.
		if h := s.Histograms[server.OpMetric(wire.OpWrite)]; h.Max == 0 {
			t.Fatalf("server %d handler latency all zero: %+v", i, h)
		}
		// Create materializes the subfile (truncate), then one combined
		// write and one combined read arrive.
		if got := s.Counters[server.MetricRequests]; got != 3 {
			t.Fatalf("server %d requests_total = %d, want 3", i, got)
		}
		if s.Counters[server.MetricBytesIn] < 4*4096 {
			t.Fatalf("server %d bytes_in_total = %d", i, s.Counters[server.MetricBytesIn])
		}

		// The same numbers in Prometheus text form, with stable names.
		prom := getProm("http://" + dbg + "/metrics")
		for _, want := range []string{
			"# TYPE dpfs_server_requests_total counter",
			"dpfs_server_requests_total 3",
			"# TYPE dpfs_server_op_read_us histogram",
			`dpfs_server_op_read_us_bucket{le="+Inf"} 1`,
		} {
			if !strings.Contains(prom, want) {
				t.Fatalf("server %d /metrics missing %q in:\n%s", i, want, prom)
			}
		}

		var h obs.Health
		if code := getJSON("http://"+dbg+"/healthz", &h); code != http.StatusOK {
			t.Fatalf("server %d /healthz status %d", i, code)
		}
		if h.Status != "ok" || h.Detail["registered"] != true {
			t.Fatalf("server %d health = %+v", i, h)
		}
		if h.Build == nil || h.Build.GoVersion == "" {
			t.Fatalf("server %d /healthz missing build_info: %+v", i, h)
		}
	}

	// The metadata daemon counted the catalog queries behind all of the
	// above and reports healthy with the DPFS schema loaded.
	var mv expvars
	if code := getJSON("http://"+metaDebug+"/debug/vars", &mv); code != http.StatusOK {
		t.Fatalf("meta /debug/vars status %d", code)
	}
	if mv.Dpfs["db"].Counters["queries_total"] == 0 {
		t.Fatalf("meta queries_total = 0: %+v", mv.Dpfs["db"])
	}
	if mv.Dpfs["net"].Counters["requests_total"] == 0 {
		t.Fatalf("meta net requests_total = 0: %+v", mv.Dpfs["net"])
	}
	if prom := getProm("http://" + metaDebug + "/metrics"); !strings.Contains(prom, "# TYPE dpfs_db_queries_total counter") {
		t.Fatalf("meta /metrics missing dpfs_db_queries_total:\n%s", prom)
	}
	var mh obs.Health
	if code := getJSON("http://"+metaDebug+"/healthz", &mh); code != http.StatusOK {
		t.Fatalf("meta /healthz status %d", code)
	}
	if mh.Build == nil || mh.Build.GoVersion == "" {
		t.Fatalf("meta /healthz missing build_info: %+v", mh)
	}
}

func freePortAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().String()
}

// TestCollectiveReadTraceSpans runs a collective read over an
// in-process cluster with tracing enabled on every rank and checks
// that the union of aggregator traces holds exactly one server.rpc
// span per contacted server, each carrying that server's brick count.
func TestCollectiveReadTraceSpans(t *testing.T) {
	const np, io = 4, 4
	c, err := cluster.Start(cluster.Config{Servers: cluster.Uniform(io), Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// 64x64 float64 array in 16x16 tiles: 16 bricks round-robin over 4
	// servers, 4 bricks each.
	dims := []int64{64, 64}
	admin, err := c.NewFS(0, core.Options{Combine: true})
	if err != nil {
		t.Fatal(err)
	}
	af, err := admin.Create("/trace.dat", 8, dims, core.Hint{
		Level: stripe.LevelMultidim, Tile: []int64{16, 16}, Placement: stripe.RoundRobin{},
	})
	if err != nil {
		t.Fatal(err)
	}
	af.Close()
	admin.Close()

	files := make([]*core.File, np)
	logs := make([]*obs.TraceLog, np)
	for r := 0; r < np; r++ {
		fs, err := c.NewFS(r, core.Options{Combine: true, Stagger: true})
		if err != nil {
			t.Fatal(err)
		}
		defer fs.Close()
		logs[r] = fs.EnableTracing(8)
		if files[r], err = fs.Open("/trace.dat"); err != nil {
			t.Fatal(err)
		}
		defer files[r].Close()
	}

	g, err := collective.NewGroup(np)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for r := 0; r < np; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sec := stripe.NewSection([]int64{int64(r) * 16, 0}, []int64{16, 64})
			if err := g.ReadAll(ctx, r, files[r], sec, make([]byte, sec.Bytes(8))); err != nil {
				t.Error(err)
			}
		}(r)
	}
	wg.Wait()

	// Collect every server.rpc span recorded by the aggregators.
	bricksPerServer := map[string]int{}
	spans := 0
	for r := 0; r < np; r++ {
		for _, tr := range logs[r].Traces() {
			for _, sp := range tr.Spans() {
				if sp.Name != "server.rpc" {
					continue
				}
				spans++
				if sp.Server == "" || sp.Duration <= 0 {
					t.Fatalf("incomplete span %+v in\n%s", sp, tr)
				}
				bricksPerServer[sp.Server] += sp.Bricks
			}
		}
	}
	if spans != io {
		t.Fatalf("got %d server.rpc spans, want exactly one per contacted server (%d)", spans, io)
	}
	if len(bricksPerServer) != io {
		t.Fatalf("contacted servers = %v, want %d distinct", bricksPerServer, io)
	}
	for srvName, n := range bricksPerServer {
		if n != 4 { // 16 bricks round-robin over 4 servers
			t.Fatalf("server %s saw %d bricks in spans, want 4", srvName, n)
		}
	}
}
